//! Hash-consed query signatures: the sound-but-incomplete fast path.
//!
//! Signatures reuse the id-interning discipline of
//! [`iixml_core::intern`]: every canonical per-node encoding is
//! interned into a [`SliceInterner`], so structurally equal (sub)trees
//! share one `u32` id and a whole-query comparison is one integer
//! compare. Two signatures per query:
//!
//! - the **skeleton** signature covers labels and child structure
//!   only. Equal skeletons are *necessary* for containment of a
//!   satisfiable query (the embedding must be a label bijection), so
//!   a skeleton mismatch is an exact fast reject.
//! - the **full** signature additionally covers bar marks and the
//!   interval-normalized conditions. Equal full signatures mean the
//!   queries are canonically identical, hence mutually contained — an
//!   exact fast accept.
//!
//! Neither signature ever *decides* containment on its own in the
//! remaining cases; the deterministic descent in the crate root stays
//! the source of truth.

use crate::canon;
use iixml_core::intern::SliceInterner;
use iixml_query::{PsQuery, QNodeRef};
use iixml_values::{Cut, IntervalSet, Rat};

/// The pair of interned signatures for one query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QuerySig {
    /// Labels + child structure only.
    pub skeleton: u32,
    /// Skeleton + bar marks + interval-normal conditions.
    pub full: u32,
}

/// Computes and interns query signatures. One signer should be reused
/// across checks so equal subtrees keep hitting the same ids.
#[derive(Default)]
pub struct Signer {
    ids: SliceInterner<u32>,
}

/// Word tags keeping skeleton and full encodings in disjoint prefixes
/// of the shared id space.
const TAG_SKELETON: u32 = 0;
const TAG_FULL: u32 = 1;

impl Signer {
    /// A fresh signer with an empty id space.
    pub fn new() -> Signer {
        Signer {
            ids: SliceInterner::new(),
        }
    }

    /// Signs a query; equal canonical forms get equal signatures.
    pub fn sign(&mut self, q: &PsQuery) -> QuerySig {
        let (skeleton, full) = self.sign_node(q, q.root());
        QuerySig { skeleton, full }
    }

    /// Number of distinct interned encodings so far.
    pub fn interned(&self) -> usize {
        self.ids.len()
    }

    fn sign_node(&mut self, q: &PsQuery, m: QNodeRef) -> (u32, u32) {
        let kids = canon::sorted_children(q, m);
        let mut kid_sigs = Vec::with_capacity(kids.len());
        for &c in &kids {
            kid_sigs.push(self.sign_node(q, c));
        }
        let mut skel = Vec::with_capacity(2 + kids.len());
        skel.push(TAG_SKELETON);
        skel.push(q.label(m).0);
        skel.extend(kid_sigs.iter().map(|&(s, _)| s));

        let mut full = Vec::with_capacity(8 + kids.len());
        full.push(TAG_FULL);
        full.push(q.label(m).0);
        full.push(u32::from(q.barred(m)));
        push_intervals(&mut full, q.cond_set(m));
        full.extend(kid_sigs.iter().map(|&(_, f)| f));

        (self.ids.intern(&skel), self.ids.intern(&full))
    }
}

/// Encodes an interval set as a self-delimiting word sequence.
fn push_intervals(buf: &mut Vec<u32>, set: &IntervalSet) {
    let ivs = set.intervals();
    buf.push(ivs.len() as u32);
    for iv in ivs {
        push_cut(buf, iv.lo());
        push_cut(buf, iv.hi());
    }
}

fn push_cut(buf: &mut Vec<u32>, c: Cut) {
    match c {
        Cut::NegInf => buf.push(0),
        Cut::PosInf => buf.push(1),
        Cut::Below(v) => {
            buf.push(2);
            push_rat(buf, v);
        }
        Cut::Above(v) => {
            buf.push(3);
            push_rat(buf, v);
        }
    }
}

fn push_rat(buf: &mut Vec<u32>, v: Rat) {
    for part in [v.numer(), v.denom()] {
        let bits = part as u64;
        buf.push((bits >> 32) as u32);
        buf.push(bits as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::parse_ps_query;
    use iixml_tree::Alphabet;

    #[test]
    fn equal_queries_share_both_signatures() {
        let mut alpha = Alphabet::new();
        for n in ["catalog", "product", "name", "price"] {
            alpha.intern(n);
        }
        let a = parse_ps_query("catalog/product{name, price[< 200]}", &mut alpha).unwrap();
        let b = parse_ps_query("catalog/product{price[< 200], name}", &mut alpha).unwrap();
        let mut s = Signer::new();
        let sa = s.sign(&a);
        let sb = s.sign(&b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn condition_changes_full_but_not_skeleton() {
        let mut alpha = Alphabet::new();
        let a = parse_ps_query("catalog/product/price[< 100]", &mut alpha).unwrap();
        let b = parse_ps_query("catalog/product/price[< 200]", &mut alpha).unwrap();
        let mut s = Signer::new();
        let (sa, sb) = (s.sign(&a), s.sign(&b));
        assert_eq!(sa.skeleton, sb.skeleton);
        assert_ne!(sa.full, sb.full);
    }

    #[test]
    fn bar_changes_full_but_not_skeleton() {
        let mut alpha = Alphabet::new();
        let a = parse_ps_query("catalog/product/picture", &mut alpha).unwrap();
        let b = parse_ps_query("catalog/product/picture!", &mut alpha).unwrap();
        let mut s = Signer::new();
        let (sa, sb) = (s.sign(&a), s.sign(&b));
        assert_eq!(sa.skeleton, sb.skeleton);
        assert_ne!(sa.full, sb.full);
    }

    #[test]
    fn skeleton_changes_with_structure() {
        let mut alpha = Alphabet::new();
        let a = parse_ps_query("catalog/product{name, price}", &mut alpha).unwrap();
        let b = parse_ps_query("catalog/product/price", &mut alpha).unwrap();
        let mut s = Signer::new();
        assert_ne!(s.sign(&a).skeleton, s.sign(&b).skeleton);
    }

    #[test]
    fn signer_reuse_is_stable() {
        let mut alpha = Alphabet::new();
        let a = parse_ps_query("r{a, b[= 3]}", &mut alpha).unwrap();
        let mut s = Signer::new();
        let first = s.sign(&a);
        let before = s.interned();
        let second = s.sign(&a);
        assert_eq!(first, second);
        assert_eq!(s.interned(), before, "re-signing interns nothing new");
    }
}
