//! Static containment analysis for ps-queries.
//!
//! Decides `q ⊑ p` — "the exact answer of `p` determines the exact
//! answer of `q` on every document" — without touching any document,
//! in the spirit of containment for conditional tree patterns
//! (Facchini–Hirai–Marx–Sherkhonov) restricted to the paper's
//! ps-query fragment.
//!
//! Because sibling pattern labels are unique (enforced by
//! `PsQueryBuilder`), a label-preserving homomorphism between two
//! ps-queries is unique when it exists, so the general backtracking
//! simulation check degenerates into one deterministic descent: pair
//! the roots, then pair each child by label. `q ⊑ p` holds iff
//!
//! 1. the label skeletons are identical (the descent is a bijection),
//! 2. every `q` condition implies the paired `p` condition
//!    (`sat_q(m, n) ⇒ sat_p(e(m), n)` pointwise), and
//! 3. every barred `q` leaf pairs with a barred `p` leaf (so the
//!    descendants `q` extracts wholesale are present in `p`'s answer).
//!
//! Under these rules every valuation of `q` into a document `T` lands
//! inside `p`'s answer prefix `p(T)`, with all the child edges a
//! re-evaluation needs, and `sat` is monotone in data children — so
//! `q(p(T)) = q(T)` *exactly*, node ids, sibling order and provenance
//! included. That equation is what [`AnswerCache`] exploits: replay
//! `q` over a recorded answer instead of re-fetching from the source,
//! byte-identically.
//!
//! A query with an unsatisfiable condition anywhere evaluates empty on
//! every document and is therefore contained in everything
//! ([`Verdict::ContainedEmpty`]).
//!
//! The exact check is guarded by a sound-but-incomplete fast path:
//! hash-consed skeleton signatures ([`sig::Signer`]) prune candidate
//! pairs whose label skeletons differ with one `u32` compare.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod canon;
pub mod sig;

pub use cache::AnswerCache;
pub use sig::{QuerySig, Signer};

use iixml_query::{PsQuery, QNodeRef};

/// Why a containment check failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mismatch {
    /// The label skeletons differ (missing/extra child or a label
    /// disagreement), so no homomorphism exists.
    Skeleton,
    /// The paired nodes' conditions are not in implication order: the
    /// candidate subquery admits a value the superquery rejects.
    Condition {
        /// The offending node of the contained-side query.
        sub: QNodeRef,
        /// Its image in the containing-side query.
        sup: QNodeRef,
    },
    /// A barred node of the contained-side query pairs with an
    /// unbarred node, so the subtree it extracts wholesale would be
    /// missing from the containing query's answer.
    Bar {
        /// The offending barred node of the contained-side query.
        sub: QNodeRef,
        /// Its (unbarred) image in the containing-side query.
        sup: QNodeRef,
    },
}

/// The outcome of a containment check `q ⊑ p`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// `q` is unsatisfiable — it evaluates empty on every document, so
    /// it is contained in every query and needs no witness.
    ContainedEmpty,
    /// `q ⊑ p`, witnessed by the (unique) embedding `e`: pairs
    /// `(m, e(m))` of query-node refs, in preorder of `q`.
    Contained(Vec<(QNodeRef, QNodeRef)>),
    /// Containment does not hold; the first mismatch found.
    NotContained(Mismatch),
}

impl Verdict {
    /// Does the verdict certify containment?
    pub fn is_contained(&self) -> bool {
        matches!(self, Verdict::ContainedEmpty | Verdict::Contained(_))
    }
}

/// Decides `sub ⊑ sup`: can the exact answer of `sub` be computed from
/// the exact answer of `sup` on every document?
///
/// Runs in `O(|sub| + |sup|)` worst case (label lookups are linear
/// scans over sibling lists, which the unique-label invariant keeps
/// small). The returned witness pairs each node of `sub` with its
/// image in `sup`.
pub fn contained_in(sub: &PsQuery, sup: &PsQuery) -> Verdict {
    if canon::is_unsatisfiable(sub) {
        return Verdict::ContainedEmpty;
    }
    let mut map: Vec<(QNodeRef, QNodeRef)> = Vec::with_capacity(sub.len());
    let mut work = vec![(sub.root(), sup.root())];
    while let Some((m, w)) = work.pop() {
        if sub.label(m) != sup.label(w) {
            return Verdict::NotContained(Mismatch::Skeleton);
        }
        if !sub.cond_set(m).implies(sup.cond_set(w)) {
            return Verdict::NotContained(Mismatch::Condition { sub: m, sup: w });
        }
        if sub.barred(m) && !sup.barred(w) {
            return Verdict::NotContained(Mismatch::Bar { sub: m, sup: w });
        }
        // The skeletons must agree exactly: an extra `sup` child makes
        // `sup` stricter (its answer can be empty where `sub`'s is
        // not); an extra `sub` child selects nodes `sup`'s answer
        // never materializes. Sibling labels are unique on both sides,
        // so equal counts + every `sub` child label present makes the
        // pairing a bijection.
        if sub.children(m).len() != sup.children(w).len() {
            return Verdict::NotContained(Mismatch::Skeleton);
        }
        for &mc in sub.children(m) {
            match canon::child_by_label(sup, w, sub.label(mc)) {
                Some(wc) => work.push((mc, wc)),
                None => return Verdict::NotContained(Mismatch::Skeleton),
            }
        }
        map.push((m, w));
    }
    map.sort_by_key(|&(m, _)| m.0);
    Verdict::Contained(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::parse_ps_query;
    use iixml_tree::Alphabet;

    fn q(alpha: &mut Alphabet, text: &str) -> PsQuery {
        parse_ps_query(text, alpha).expect("test query parses")
    }

    #[test]
    fn identical_queries_contain_each_other() {
        let mut alpha = Alphabet::new();
        let a = q(&mut alpha, "catalog/product{name, price[< 200]}");
        let b = q(&mut alpha, "catalog/product{name, price[< 200]}");
        assert!(contained_in(&a, &b).is_contained());
        assert!(contained_in(&b, &a).is_contained());
        // The witness maps every node.
        match contained_in(&a, &b) {
            Verdict::Contained(map) => assert_eq!(map.len(), a.len()),
            v => panic!("expected containment, got {v:?}"),
        }
    }

    #[test]
    fn narrower_condition_is_contained_in_wider() {
        let mut alpha = Alphabet::new();
        let narrow = q(&mut alpha, "catalog/product/price[< 100]");
        let wide = q(&mut alpha, "catalog/product/price[< 200]");
        assert!(contained_in(&narrow, &wide).is_contained());
        match contained_in(&wide, &narrow) {
            Verdict::NotContained(Mismatch::Condition { .. }) => {}
            v => panic!("expected condition mismatch, got {v:?}"),
        }
    }

    #[test]
    fn skeleton_mismatch_rejects_both_ways() {
        let mut alpha = Alphabet::new();
        let a = q(&mut alpha, "catalog/product{name, price}");
        let b = q(&mut alpha, "catalog/product/price");
        assert_eq!(
            contained_in(&a, &b),
            Verdict::NotContained(Mismatch::Skeleton)
        );
        assert_eq!(
            contained_in(&b, &a),
            Verdict::NotContained(Mismatch::Skeleton)
        );
    }

    #[test]
    fn bar_requires_bar_on_the_wider_side() {
        let mut alpha = Alphabet::new();
        let barred = q(&mut alpha, "catalog/product/picture!");
        let plain = q(&mut alpha, "catalog/product/picture");
        // A barred leaf needs the whole subtree, which the unbarred
        // query's answer does not carry.
        match contained_in(&barred, &plain) {
            Verdict::NotContained(Mismatch::Bar { .. }) => {}
            v => panic!("expected bar mismatch, got {v:?}"),
        }
        // The other way round is fine: the barred answer is a superset
        // and re-evaluation drops the extra descendants.
        assert!(contained_in(&plain, &barred).is_contained());
    }

    #[test]
    fn unsatisfiable_query_is_contained_in_everything() {
        let mut alpha = Alphabet::new();
        let unsat = q(&mut alpha, "catalog/product/price[< 10 & > 20]");
        let other = q(&mut alpha, "totally/unrelated");
        assert_eq!(contained_in(&unsat, &other), Verdict::ContainedEmpty);
    }

    #[test]
    fn witness_is_in_sub_preorder() {
        let mut alpha = Alphabet::new();
        let a = q(
            &mut alpha,
            "catalog/product{name, price[< 100], cat/subcat}",
        );
        let b = q(
            &mut alpha,
            "catalog/product{name, price[< 200], cat/subcat}",
        );
        match contained_in(&a, &b) {
            Verdict::Contained(map) => {
                let subs: Vec<u32> = map.iter().map(|&(m, _)| m.0).collect();
                let mut sorted = subs.clone();
                sorted.sort_unstable();
                assert_eq!(subs, sorted);
                for &(m, w) in &map {
                    assert_eq!(a.label(m), b.label(w));
                }
            }
            v => panic!("expected containment, got {v:?}"),
        }
    }
}
