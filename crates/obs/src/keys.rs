//! The workspace-wide registry of metric keys and environment
//! variables.
//!
//! Every counter, histogram, and span name emitted anywhere in the
//! workspace is declared here as a `pub const`, and every `IIXML_*`
//! environment variable read anywhere is declared in [`ENV_VARS`].
//! Emit sites reference these constants instead of spelling the string
//! again; `iixml-vet`'s `metrics` and `env` rules enforce that no
//! stray literal bypasses the registry. Before this module existed a
//! typo'd key silently created a brand-new metric (and a typo'd env
//! var silently read nothing); now both are compile-visible names and
//! the vet pass rejects the literal.
//!
//! Naming convention (see DESIGN.md §6): `<crate>.<area>.<metric>`,
//! durations in nanoseconds carry a `_ns` suffix, sizes and counts no
//! suffix. Dynamic families (one key per label, e.g. per-source fetch
//! latency) register their *prefix* here and build names through a
//! helper so the prefix spelling still has a single home.

// ---------------------------------------------------------------------
// core — Algorithm Refine and its automaton-product subroutines.

/// Refine steps executed (Theorem 3.4's loop).
pub const CORE_REFINE_STEPS: &str = "core.refine.steps";
/// Size of the `T_{q,A}` tree built per step.
pub const CORE_REFINE_TQA_SIZE: &str = "core.refine.tqa_size";
/// Fan-out of the ⋊⋉ join per node.
pub const CORE_REFINE_JOIN_FANOUT: &str = "core.refine.join_fanout";
/// Steps whose µ expansion multiplied disjuncts (Example 3.2 blowup).
pub const CORE_REFINE_DISJUNCTIVE_EXPANSIONS: &str = "core.refine.disjunctive_expansions";
/// Time in the `intersect` automaton product.
pub const CORE_REFINE_INTERSECT_NS: &str = "core.refine.intersect_ns";
/// Time trimming unproductive symbols.
pub const CORE_REFINE_TRIM_NS: &str = "core.refine.trim_ns";
/// Time in per-step minimization.
pub const CORE_REFINE_MINIMIZE_NS: &str = "core.refine.minimize_ns";
/// Distinct atoms interned per kernel-table build.
pub const CORE_INTERN_ATOMS: &str = "core.intern.atoms";
/// Distinct disjunctions interned per kernel-table build.
pub const CORE_INTERN_DISJS: &str = "core.intern.disjs";
/// Knowledge size after each step (post-minimization).
pub const CORE_REFINE_STEP_SIZE: &str = "core.refine.step_size";
/// Time restricting to a declared type (Theorem 3.5).
pub const CORE_TYPE_INTERSECT_RESTRICT_NS: &str = "core.type_intersect.restrict_ns";
/// Atoms produced per symbol pair in the type product.
pub const CORE_TYPE_INTERSECT_ATOM_FANOUT: &str = "core.type_intersect.atom_fanout";
/// Symbol pairs whose conditions were contradictory.
pub const CORE_TYPE_INTERSECT_CONTRADICTIONS: &str = "core.type_intersect.contradictions";
/// Time per bisimulation-minimization call.
pub const CORE_MINIMIZE_CALL_NS: &str = "core.minimize.call_ns";
/// Symbols merged away by minimization.
pub const CORE_MINIMIZE_SYMBOLS_MERGED: &str = "core.minimize.symbols_merged";
/// Partition signatures served from the intern table.
pub const CORE_MINIMIZE_INTERNED_SIGS: &str = "core.minimize.interned_sigs";

// ---------------------------------------------------------------------
// query — pattern evaluation.

/// `eval` calls.
pub const QUERY_EVAL_CALLS: &str = "query.eval.calls";
/// Candidate valuations examined per call.
pub const QUERY_EVAL_VALUATIONS: &str = "query.eval.valuations";
/// Answer nodes produced per call.
pub const QUERY_EVAL_ANSWER_NODES: &str = "query.eval.answer_nodes";

// ---------------------------------------------------------------------
// oracle — bounded world enumeration.

/// Worlds produced per enumeration.
pub const ORACLE_ENUMERATE_WORLDS: &str = "oracle.enumerate.worlds";
/// Enumerations cut off by a bound.
pub const ORACLE_ENUMERATE_TRUNCATIONS: &str = "oracle.enumerate.truncations";
/// Time per enumeration call.
pub const ORACLE_ENUMERATE_CALL_NS: &str = "oracle.enumerate.call_ns";

// ---------------------------------------------------------------------
// mediator — query decomposition over source views.

/// Time per mediated execution.
pub const MEDIATOR_EXECUTE_NS: &str = "mediator.execute_ns";
/// Time per completion run.
pub const MEDIATOR_COMPLETE_NS: &str = "mediator.complete_ns";
/// Local queries shipped to sources.
pub const MEDIATOR_LOCAL_QUERIES: &str = "mediator.local_queries";
/// Answer nodes shipped back from sources.
pub const MEDIATOR_SHIPPED_NODES: &str = "mediator.shipped_nodes";
/// Containment-cache lookups performed before fetch/mediation.
pub const MEDIATOR_CONTAINMENT_CHECKS: &str = "mediator.containment_checks";
/// Containment-cache lookups answered from recorded knowledge.
pub const MEDIATOR_CONTAINMENT_HITS: &str = "mediator.containment_hits";
/// Candidate cache entries pruned on skeleton signature alone.
pub const MEDIATOR_CONTAINMENT_FAST_REJECTS: &str = "mediator.containment_fast_rejects";

// ---------------------------------------------------------------------
// webhouse — sessions over unreliable sources (DESIGN.md §7).

/// Fetches retried after a transient fault.
pub const WEBHOUSE_RETRIES: &str = "webhouse.retries";
/// Source errors observed (pre-retry).
pub const WEBHOUSE_SOURCE_ERRORS: &str = "webhouse.source_errors";
/// Answers rejected by pre-graft validation.
pub const WEBHOUSE_VALIDATION_REJECTS: &str = "webhouse.validation_rejects";
/// Queries that fell back to a degraded local answer.
pub const WEBHOUSE_DEGRADED_ANSWERS: &str = "webhouse.degraded_answers";
/// Knowledge quarantines (§5 reinitialization).
pub const WEBHOUSE_QUARANTINES: &str = "webhouse.quarantines";
/// Simulated backoff waited per retry.
pub const WEBHOUSE_BACKOFF_NS: &str = "webhouse.backoff_ns";
/// Prefix of the per-source fetch-latency family; full names come from
/// [`webhouse_fetch_ns`].
pub const WEBHOUSE_FETCH_NS_PREFIX: &str = "webhouse.fetch_ns.";

/// The fetch-latency histogram name for one source label (the dynamic
/// `webhouse.fetch_ns.<label>` family).
pub fn webhouse_fetch_ns(label: &str) -> String {
    format!("{WEBHOUSE_FETCH_NS_PREFIX}{label}")
}

// ---------------------------------------------------------------------
// par — the scoped worker pool (DESIGN.md §8).

/// Tasks executed through `par_map` (all widths, including 1).
pub const PAR_TASKS: &str = "par.tasks";
/// Tasks a worker claimed outside its fair static share.
pub const PAR_STEALS: &str = "par.steals";
/// Worker width per `par_map` invocation.
pub const PAR_THREADS: &str = "par.threads";
/// Chunks dispatched through `par_map_chunks` (parallel path only).
pub const PAR_CHUNKS: &str = "par.chunks";

// ---------------------------------------------------------------------
// store — the durable session journal (DESIGN.md §9).

/// Records appended to the WAL.
pub const STORE_APPENDS: &str = "store.appends";
/// fsync calls issued.
pub const STORE_FSYNCS: &str = "store.fsyncs";
/// Frames rejected by CRC during recovery.
pub const STORE_CRC_REJECTS: &str = "store.crc_rejects";
/// Torn tails truncated during recovery.
pub const STORE_TORN_TAILS: &str = "store.torn_tails";
/// Records replayed during recovery.
pub const STORE_REPLAYED: &str = "store.replayed";
/// Snapshot payload sizes written.
pub const STORE_SNAPSHOT_BYTES: &str = "store.snapshot_bytes";
/// Records buffered through the group-commit writer.
pub const STORE_BATCHED_APPENDS: &str = "store.batched_appends";
/// Group-commit flushes (one buffered write + fsync each).
pub const STORE_BATCH_FLUSHES: &str = "store.batch_flushes";
/// WAL segments retired by compaction (fully snapshot-covered).
pub const STORE_SEGMENTS_RETIRED: &str = "store.segments_retired";
/// Write-path I/O failures (write/fsync/rename/remove) that poisoned a
/// writer or aborted a snapshot.
pub const STORE_IO_FAULTS: &str = "store.io_faults";
/// Directory-fsync failures propagated from retire/snapshot install.
pub const STORE_DIR_SYNC_FAILS: &str = "store.dir_sync_fails";

// ---------------------------------------------------------------------
// serve — the multi-tenant TCP session server (DESIGN.md §12).

/// Connections accepted.
pub const SERVE_ACCEPTED: &str = "serve.conn.accepted";
/// Requests admitted and executed.
pub const SERVE_REQUESTS: &str = "serve.req.admitted";
/// Requests refused by admission control (backpressure).
pub const SERVE_SHED: &str = "serve.req.shed";
/// Connections degraded by a frame fault (garbage, bad CRC, version).
pub const SERVE_FRAME_ERRORS: &str = "serve.conn.frame_errors";
/// Connections degraded by a deadline miss or slow-loris budget.
pub const SERVE_CONN_TIMEOUTS: &str = "serve.conn.timeouts";
/// Sessions opened fresh.
pub const SERVE_SESSIONS_OPENED: &str = "serve.session.opened";
/// Sessions recovered from their journal at restart.
pub const SERVE_SESSIONS_RECOVERED: &str = "serve.session.recovered";
/// Sessions closed (synced and discarded) on client request.
pub const SERVE_SESSIONS_CLOSED: &str = "serve.session.closed";
/// Request frame body sizes (bytes).
pub const SERVE_FRAME_BYTES: &str = "serve.req.frame_bytes";

// ---------------------------------------------------------------------
// The iterable registry.

/// Every registered counter key.
pub const COUNTERS: &[&str] = &[
    CORE_REFINE_STEPS,
    CORE_REFINE_DISJUNCTIVE_EXPANSIONS,
    CORE_TYPE_INTERSECT_CONTRADICTIONS,
    CORE_MINIMIZE_SYMBOLS_MERGED,
    CORE_MINIMIZE_INTERNED_SIGS,
    CORE_INTERN_ATOMS,
    CORE_INTERN_DISJS,
    QUERY_EVAL_CALLS,
    ORACLE_ENUMERATE_TRUNCATIONS,
    MEDIATOR_LOCAL_QUERIES,
    MEDIATOR_SHIPPED_NODES,
    MEDIATOR_CONTAINMENT_CHECKS,
    MEDIATOR_CONTAINMENT_HITS,
    MEDIATOR_CONTAINMENT_FAST_REJECTS,
    WEBHOUSE_RETRIES,
    WEBHOUSE_SOURCE_ERRORS,
    WEBHOUSE_VALIDATION_REJECTS,
    WEBHOUSE_DEGRADED_ANSWERS,
    WEBHOUSE_QUARANTINES,
    PAR_TASKS,
    PAR_STEALS,
    PAR_CHUNKS,
    STORE_APPENDS,
    STORE_FSYNCS,
    STORE_CRC_REJECTS,
    STORE_TORN_TAILS,
    STORE_REPLAYED,
    STORE_BATCHED_APPENDS,
    STORE_BATCH_FLUSHES,
    STORE_SEGMENTS_RETIRED,
    STORE_IO_FAULTS,
    STORE_DIR_SYNC_FAILS,
    SERVE_ACCEPTED,
    SERVE_REQUESTS,
    SERVE_SHED,
    SERVE_FRAME_ERRORS,
    SERVE_CONN_TIMEOUTS,
    SERVE_SESSIONS_OPENED,
    SERVE_SESSIONS_RECOVERED,
    SERVE_SESSIONS_CLOSED,
];

/// Every registered fixed-name histogram key.
pub const HISTOGRAMS: &[&str] = &[
    CORE_REFINE_TQA_SIZE,
    CORE_REFINE_JOIN_FANOUT,
    CORE_REFINE_INTERSECT_NS,
    CORE_REFINE_TRIM_NS,
    CORE_REFINE_MINIMIZE_NS,
    CORE_REFINE_STEP_SIZE,
    CORE_TYPE_INTERSECT_RESTRICT_NS,
    CORE_TYPE_INTERSECT_ATOM_FANOUT,
    CORE_MINIMIZE_CALL_NS,
    QUERY_EVAL_VALUATIONS,
    QUERY_EVAL_ANSWER_NODES,
    ORACLE_ENUMERATE_WORLDS,
    ORACLE_ENUMERATE_CALL_NS,
    MEDIATOR_EXECUTE_NS,
    MEDIATOR_COMPLETE_NS,
    WEBHOUSE_BACKOFF_NS,
    PAR_THREADS,
    STORE_SNAPSHOT_BYTES,
    SERVE_FRAME_BYTES,
];

/// Prefixes of dynamic (per-label) metric families.
pub const DYNAMIC_PREFIXES: &[&str] = &[WEBHOUSE_FETCH_NS_PREFIX];

/// Is `name` a registered key — a fixed counter or histogram name, or
/// a member of a registered dynamic family?
pub fn is_registered(name: &str) -> bool {
    COUNTERS.contains(&name)
        || HISTOGRAMS.contains(&name)
        || DYNAMIC_PREFIXES
            .iter()
            .any(|p| name.starts_with(p) && name.len() > p.len())
}

// ---------------------------------------------------------------------
// Environment variables.

/// Enables metric collection (`1`, `true`, `on`, `yes`).
pub const ENV_OBS: &str = "IIXML_OBS";
/// Worker width for `iixml-par` (`1` = sequential).
pub const ENV_PAR_THREADS: &str = "IIXML_PAR_THREADS";
/// Items per chunk for `par_map_chunks` (overrides caller defaults).
pub const ENV_PAR_CHUNK: &str = "IIXML_PAR_CHUNK";
/// Input size at or below which `par_map_chunks` runs sequentially.
pub const ENV_PAR_CUTOFF: &str = "IIXML_PAR_CUTOFF";
/// Base seed for deterministic property/chaos tests.
pub const ENV_TEST_SEED: &str = "IIXML_TEST_SEED";
/// Cases per property in the in-tree property-test harness.
pub const ENV_PROPTEST_CASES: &str = "IIXML_PROPTEST_CASES";
/// Group-commit flush threshold: buffered WAL bytes.
pub const ENV_STORE_BATCH_BYTES: &str = "IIXML_STORE_BATCH_BYTES";
/// Group-commit flush threshold: buffered records.
pub const ENV_STORE_BATCH_RECS: &str = "IIXML_STORE_BATCH_RECS";
/// Group-commit flush threshold: logical-clock ticks a record may
/// linger unflushed (one tick per append).
pub const ENV_STORE_LINGER: &str = "IIXML_STORE_LINGER";
/// TCP port `iixml serve` binds (0 = ephemeral).
pub const ENV_SERVE_PORT: &str = "IIXML_SERVE_PORT";
/// Session-map shard count for `iixml serve`.
pub const ENV_SERVE_SHARDS: &str = "IIXML_SERVE_SHARDS";
/// Acceptor/worker thread count for `iixml serve`.
pub const ENV_SERVE_WORKERS: &str = "IIXML_SERVE_WORKERS";
/// Per-tenant open-session cap.
pub const ENV_SERVE_MAX_SESSIONS: &str = "IIXML_SERVE_MAX_SESSIONS";
/// Per-tenant in-flight request cap.
pub const ENV_SERVE_MAX_INFLIGHT: &str = "IIXML_SERVE_MAX_INFLIGHT";
/// Per-tenant token-bucket burst (refilled every refill tick).
pub const ENV_SERVE_QUOTA: &str = "IIXML_SERVE_QUOTA";
/// Per-connection read deadline in milliseconds.
pub const ENV_SERVE_READ_TIMEOUT_MS: &str = "IIXML_SERVE_READ_TIMEOUT_MS";
/// Per-connection write deadline in milliseconds.
pub const ENV_SERVE_WRITE_TIMEOUT_MS: &str = "IIXML_SERVE_WRITE_TIMEOUT_MS";
/// Seed for the store's deterministic write-path fault injector.
pub const ENV_STORE_FAULT_SEED: &str = "IIXML_STORE_FAULT_SEED";
/// Per-operation fault probability for the store injector (0.0–1.0).
pub const ENV_STORE_FAULT_RATE: &str = "IIXML_STORE_FAULT_RATE";
/// Fail exactly the Nth store I/O operation (1-based).
pub const ENV_STORE_FAULT_AT: &str = "IIXML_STORE_FAULT_AT";
/// Toggle for the webhouse containment-keyed answer cache (default on;
/// `0`/`false`/`off`/`no` disable it).
pub const ENV_CONTAIN_CACHE: &str = "IIXML_CONTAIN_CACHE";

/// Every `IIXML_*` environment variable the workspace reads, with a
/// one-line purpose. `iixml-vet`'s `env` rule checks that no other
/// `IIXML_*` literal exists and that each entry is documented in
/// README.md.
pub const ENV_VARS: &[(&str, &str)] = &[
    (ENV_OBS, "enable metric collection"),
    (ENV_PAR_THREADS, "worker width for parallel maps"),
    (ENV_PAR_CHUNK, "items per chunk for chunked parallel maps"),
    (
        ENV_PAR_CUTOFF,
        "input size at or below which chunked maps run inline",
    ),
    (ENV_TEST_SEED, "base seed for deterministic tests"),
    (ENV_PROPTEST_CASES, "cases per property test"),
    (
        ENV_STORE_BATCH_BYTES,
        "group-commit flush threshold in bytes",
    ),
    (
        ENV_STORE_BATCH_RECS,
        "group-commit flush threshold in records",
    ),
    (
        ENV_STORE_LINGER,
        "max linger ticks before a group-commit flush",
    ),
    (ENV_SERVE_PORT, "TCP port for iixml serve (0 = ephemeral)"),
    (ENV_SERVE_SHARDS, "session-map shard count"),
    (ENV_SERVE_WORKERS, "server worker thread count"),
    (ENV_SERVE_MAX_SESSIONS, "per-tenant open-session cap"),
    (ENV_SERVE_MAX_INFLIGHT, "per-tenant in-flight request cap"),
    (ENV_SERVE_QUOTA, "per-tenant token-bucket burst"),
    (
        ENV_SERVE_READ_TIMEOUT_MS,
        "per-connection read deadline (ms)",
    ),
    (
        ENV_SERVE_WRITE_TIMEOUT_MS,
        "per-connection write deadline (ms)",
    ),
    (
        ENV_STORE_FAULT_SEED,
        "seed for the store write-path fault injector",
    ),
    (
        ENV_STORE_FAULT_RATE,
        "per-operation store fault probability",
    ),
    (
        ENV_STORE_FAULT_AT,
        "fail exactly the Nth store I/O operation",
    ),
    (
        ENV_CONTAIN_CACHE,
        "toggle the containment-keyed answer cache (default on)",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for &k in COUNTERS.iter().chain(HISTOGRAMS) {
            assert!(seen.insert(k), "duplicate metric key {k}");
            assert!(
                k.split('.').count() >= 2
                    && k.split('.').all(|p| !p.is_empty()
                        && p.chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')),
                "malformed metric key {k}"
            );
        }
        for &p in DYNAMIC_PREFIXES {
            assert!(p.ends_with('.'), "dynamic prefix {p} must end with '.'");
            assert!(
                !seen.contains(p.trim_end_matches('.')),
                "dynamic prefix {p} collides with a fixed key"
            );
        }
    }

    #[test]
    fn dynamic_family_membership() {
        assert!(is_registered(&webhouse_fetch_ns("anon")));
        assert!(is_registered(CORE_REFINE_STEPS));
        assert!(!is_registered("webhouse.fetch_ns."));
        assert!(!is_registered("core.refine.typo"));
    }

    #[test]
    fn env_vars_are_unique_iixml_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for &(name, doc) in ENV_VARS {
            assert!(seen.insert(name), "duplicate env var {name}");
            assert!(name.starts_with("IIXML_"), "bad env var prefix {name}");
            assert!(!doc.is_empty());
        }
    }
}
