#![warn(missing_docs)]

//! `iixml-obs` — zero-dependency observability for the iixml workspace.
//!
//! The Refine pipeline's representation can grow exponentially over a
//! query-answer *sequence* (Example 3.2), and the automaton-product
//! sites (`intersect`, type restriction) dominate cost long before that.
//! This crate gives every hot path cheap counters, size histograms, and
//! scoped timers so perf claims can be measured rather than asserted —
//! using only `std` (`std::sync` atomics + `OnceLock`), so it compiles
//! even when the crate registry is unreachable.
//!
//! # Design
//!
//! * **Disabled by default, branch-on-atomic when off.** Every record
//!   call first does one relaxed atomic load; unless `IIXML_OBS=1` is
//!   set in the environment (or [`set_enabled`] was called), nothing
//!   else happens — no clock reads, no locking, no allocation.
//! * **Static handles for hot paths.** Call sites declare
//!   `static M: LazyCounter = LazyCounter::new("core.refine.steps");`
//!   and pay one `OnceLock` pointer load after first use. Dynamic names
//!   (e.g. per-source spans) go through [`counter`]/[`histogram`],
//!   which take the registry lock.
//! * **Hand-rolled JSON.** [`snapshot`] serializes via the [`json`]
//!   module — no serde.
//!
//! # Metric naming
//!
//! `<crate>.<area>.<metric>[_<unit>]`, e.g. `core.refine.step_ns`,
//! `query.eval.valuations`. Durations are nanoseconds (`_ns`); sizes
//! and counts carry no suffix. See DESIGN.md for the full convention.
//!
//! # Example
//!
//! ```
//! use iixml_obs as obs;
//! obs::set_enabled(true);
//! static STEPS: obs::LazyCounter = obs::LazyCounter::new("demo.steps");
//! static COST: obs::LazyHistogram = obs::LazyHistogram::new("demo.cost_ns");
//! STEPS.incr();
//! {
//!     let _span = COST.time();
//!     // ... measured work ...
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo.steps"), Some(1));
//! assert!(snap.to_json().contains("demo.cost_ns"));
//! obs::reset();
//! obs::set_enabled(false);
//! ```

pub mod json;
pub mod keys;

use json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Enablement.

/// 0 = not yet initialized from the environment, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Environment variable that enables metric collection when set to `1`,
/// `true`, or `on` (the [`keys::ENV_OBS`] registry entry).
pub const ENV_TOGGLE: &str = keys::ENV_OBS;

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(ENV_TOGGLE)
        .map(|v| matches!(v.as_str(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Is metric collection enabled? One relaxed atomic load on the fast
/// path; the first call reads [`ENV_TOGGLE`] from the environment.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

/// Programmatically enables or disables collection, overriding the
/// environment (used by `iixml --stats` and by tests).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Primitives.

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets in a histogram: bucket `i` counts
/// observations in `[2^i, 2^(i+1))` (bucket 0 also takes value 0).
const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` observations (sizes, counts,
/// nanosecond durations) with power-of-two buckets plus running
/// count/sum/min/max.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time summary (individual fields are
    /// read with relaxed ordering; concurrent writers may skew them by
    /// an in-flight observation).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil() as u64;
            let mut seen = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= target {
                    // Upper edge of bucket i: 2^(i+1) - 1 (i = 0 holds
                    // values 0 and 1).
                    return if i >= 63 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    };
                }
            }
            0
        };
        let min = self.min.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A digest of a [`Histogram`]: exact count/sum/min/max, bucket-upper-
/// bound quantiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (upper bucket edge).
    pub p50: u64,
    /// 90th percentile (upper bucket edge).
    pub p90: u64,
    /// 99th percentile (upper bucket edge).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------
// Registry.

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Interns a name: metric handles live for the process lifetime, so the
/// (bounded) name set is leaked once per distinct metric.
fn intern(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// The counter registered under `name`, creating it on first use.
/// Takes the registry lock — prefer [`LazyCounter`] on hot paths.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = registry().counters.lock().expect("obs registry poisoned");
    if let Some(c) = map.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::default());
    map.insert(intern(name), c);
    c
}

/// The histogram registered under `name`, creating it on first use.
/// Takes the registry lock — prefer [`LazyHistogram`] on hot paths.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = registry().histograms.lock().expect("obs registry poisoned");
    if let Some(h) = map.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::default());
    map.insert(intern(name), h);
    h
}

/// Adds `n` to the counter `name` when collection is enabled.
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Records `v` into the histogram `name` when collection is enabled.
#[inline]
pub fn observe(name: &str, v: u64) {
    if enabled() {
        histogram(name).observe(v);
    }
}

/// Starts a scoped span recording its duration (ns) into the histogram
/// `name` when dropped. A no-op (no clock read) when disabled.
#[inline]
pub fn time(name: &str) -> SpanGuard {
    if enabled() {
        SpanGuard {
            inner: Some((histogram(name), Instant::now())),
        }
    } else {
        SpanGuard { inner: None }
    }
}

// ---------------------------------------------------------------------
// Static handles.

/// A counter handle for `static` declaration at hot call sites: the
/// registry lock is taken at most once (first enabled use).
pub struct LazyCounter {
    name: &'static str,
    slot: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declares a counter named `name` (registered lazily).
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn get(&self) -> &'static Counter {
        self.slot.get_or_init(|| counter(self.name))
    }

    /// Adds `n` when collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.get().add(n);
        }
    }

    /// Adds one when collection is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A histogram handle for `static` declaration at hot call sites.
pub struct LazyHistogram {
    name: &'static str,
    slot: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Declares a histogram named `name` (registered lazily).
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn get(&self) -> &'static Histogram {
        self.slot.get_or_init(|| histogram(self.name))
    }

    /// Records `v` when collection is enabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.get().observe(v);
        }
    }

    /// Starts a scoped timer recording nanoseconds on drop; a no-op
    /// (no clock read) when disabled.
    #[inline]
    pub fn time(&self) -> SpanGuard {
        if enabled() {
            SpanGuard {
                inner: Some((self.get(), Instant::now())),
            }
        } else {
            SpanGuard { inner: None }
        }
    }
}

/// A scoped span: records its lifetime in nanoseconds into the owning
/// histogram when dropped (see [`LazyHistogram::time`] / [`time`]).
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct SpanGuard {
    inner: Option<(&'static Histogram, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((h, t0)) = self.inner.take() {
            h.observe(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots.

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// The value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The digest of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// The snapshot as a [`Json`] value:
    /// `{"counters": {...}, "histograms": {name: {count, sum, ...}}}`.
    pub fn to_json_value(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj()
                            .set("count", h.count)
                            .set("sum", h.sum)
                            .set("min", h.min)
                            .set("max", h.max)
                            .set("mean", h.mean())
                            .set("p50", h.p50)
                            .set("p90", h.p90)
                            .set("p99", h.p99),
                    )
                })
                .collect(),
        );
        Json::obj()
            .set("counters", counters)
            .set("histograms", histograms)
    }

    /// The snapshot serialized as pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }
}

/// Captures every registered metric. Registration order does not
/// matter; names are sorted.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(&k, c)| (k.to_string(), c.get()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(&k, h)| (k.to_string(), h.summary()))
        .collect();
    Snapshot {
        counters,
        histograms,
    }
}

/// Resets every registered metric to zero (handles stay valid).
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("obs registry poisoned").values() {
        c.reset();
    }
    for h in reg
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obs tests share global state (registry + toggle), so they run
    /// under one lock to stay order-independent.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = serial();
        set_enabled(true);
        reset();
        add("test.counter.basic", 2);
        add("test.counter.basic", 3);
        assert_eq!(snapshot().counter("test.counter.basic"), Some(5));
        reset();
        assert_eq!(snapshot().counter("test.counter.basic"), Some(0));
        set_enabled(false);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = serial();
        set_enabled(true);
        reset();
        // Register the metric so the snapshot can prove it stayed zero.
        add("test.counter.gated", 0);
        set_enabled(false);
        add("test.counter.gated", 10);
        observe("test.hist.gated", 10);
        static C: LazyCounter = LazyCounter::new("test.counter.gated");
        C.incr();
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("test.counter.gated"), Some(0));
        // The histogram was never registered (observe was gated).
        assert!(snap.histogram("test.hist.gated").is_none());
        set_enabled(false);
    }

    #[test]
    fn histogram_summary_is_sane() {
        let _g = serial();
        set_enabled(true);
        reset();
        let h = histogram("test.hist.sizes");
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 26.5).abs() < 1e-9);
        assert!(s.p50 >= 2 && s.p50 <= 3, "p50 = {}", s.p50);
        assert!(s.p99 >= 100, "p99 = {}", s.p99);
        set_enabled(false);
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let _g = serial();
        set_enabled(true);
        reset();
        let h = histogram("test.hist.zero");
        h.observe(0);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (1, 0, 0));
        assert!(s.p50 <= 1);
        set_enabled(false);
    }

    #[test]
    fn spans_record_durations() {
        let _g = serial();
        set_enabled(true);
        reset();
        static SPAN: LazyHistogram = LazyHistogram::new("test.span.ns");
        {
            let _s = SPAN.time();
            std::hint::black_box(1 + 1);
        }
        let s = snapshot();
        let h = s.histogram("test.span.ns").expect("span registered");
        assert_eq!(h.count, 1);
        set_enabled(false);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let _g = serial();
        set_enabled(true);
        reset();
        static C: LazyCounter = LazyCounter::new("test.counter.concurrent");
        static H: LazyHistogram = LazyHistogram::new("test.hist.concurrent");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for i in 0..1_000u64 {
                        C.incr();
                        H.observe(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.counter.concurrent"), Some(8_000));
        let h = snap.histogram("test.hist.concurrent").unwrap();
        assert_eq!(h.count, 8_000);
        assert_eq!(h.sum, 8 * (0..1_000u64).sum::<u64>());
        set_enabled(false);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let _g = serial();
        set_enabled(true);
        reset();
        add("test.json.counter", 7);
        observe("test.json.hist", 42);
        let text = snapshot().to_json();
        assert!(text.contains("\"test.json.counter\": 7"));
        assert!(text.contains("\"test.json.hist\""));
        assert!(text.contains("\"counters\""));
        assert!(text.contains("\"histograms\""));
        set_enabled(false);
    }
}
