//! A minimal JSON value builder and serializer.
//!
//! The observability layer (and the bench `report` binary) emit JSON by
//! hand so that the workspace carries no external serialization
//! dependency — the build must succeed even when the crate registry is
//! unreachable. Only what snapshots need is implemented: objects keep
//! insertion order, numbers are `u64`/`i64`/`f64`, strings are escaped
//! per RFC 8259.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for metrics).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts a field (builder style); panics if `self` is not an
    /// object.
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let nl = |out: &mut String, depth: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` round-trips f64 (shortest representation).
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    nl(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    nl(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .set("name", "refine")
            .set("count", 3u64)
            .set("neg", -4i64)
            .set("ratio", 0.5)
            .set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            j.render(),
            r#"{"name":"refine","count":3,"neg":-4,"ratio":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_output_is_indented() {
        let j = Json::obj().set("a", 1u64);
        assert_eq!(j.render_pretty(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn preserves_insertion_order() {
        let j = Json::obj().set("z", 1u64).set("a", 2u64);
        assert_eq!(j.render(), r#"{"z":1,"a":2}"#);
    }
}
