//! A small deterministic PRNG (SplitMix64) so the workspace needs no
//! external `rand` crate and generation is reproducible byte-for-byte
//! across platforms and toolchain updates.
//!
//! SplitMix64 (Steele, Lea, Flood 2014) passes BigCrush, needs one
//! `u64` of state, and is trivially seedable — more than enough for
//! workload generation and property tests. It is **not** a
//! cryptographic generator.

/// A deterministic pseudo-random generator. Identical seeds yield
/// identical streams on every platform.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be positive. Uses
    /// rejection sampling (Lemire-style threshold) to stay unbiased.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::below(0)");
        // Zone = largest multiple of n that fits in u64.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `i64` in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "DetRng::range_i64: empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `usize` in the half-open range `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "DetRng::range_usize: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of mantissa gives a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Picks a uniform element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "DetRng::choose on empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Derives an independent generator for sub-task `i` (stable under
    /// reordering of other sub-tasks).
    pub fn fork(&self, i: u64) -> DetRng {
        // Finalize `i` through an independent stream so fork(0),
        // fork(1), ... differ even though consecutive seeds are close.
        let mut d = DetRng::new(self.state ^ DetRng::new(i).next_u64());
        d.next_u64();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(43);
        assert_ne!(DetRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            let v = rng.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let u = rng.range_usize(3, 9);
            assert!((3..9).contains(&u));
            assert!(rng.below(1) == 0);
        }
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = DetRng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 drawn: {seen:?}");
    }

    #[test]
    fn bool_respects_probability_extremes() {
        let mut rng = DetRng::new(9);
        assert!(rng.bool(1.0));
        assert!(!rng.bool(0.0));
        let hits = (0..10_000).filter(|_| rng.bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn forks_are_independent() {
        let base = DetRng::new(5);
        let x = base.fork(1).next_u64();
        let y = base.fork(2).next_u64();
        assert_ne!(x, y);
        assert_eq!(base.fork(1).next_u64(), x);
    }
}
