#![warn(missing_docs)]

//! Workload generators for experiments and integration tests.
//!
//! * [`catalog`] — the paper's running example at configurable scale;
//! * [`blowup_queries`] — the Example 3.2 adversarial family that makes
//!   Algorithm Refine's incomplete tree exponential;
//! * [`linear_queries`] — the Lemma 3.12 restriction (single-path
//!   queries);
//! * [`sample_tree`] — a random member of a tree type;
//! * [`random_queries`] — random ps-queries shaped by a tree type.
//!
//! All generation is deterministic given the seed.

use iixml_query::{PsQuery, PsQueryBuilder};
use iixml_tree::{Alphabet, DataTree, Label, Mult, NidGen, NodeRef, TreeType, TreeTypeBuilder};
use iixml_values::{Cond, Rat};

pub mod rng;
pub mod testkit;

use rng::DetRng;

/// A generated catalog workload.
pub struct Catalog {
    /// The element alphabet.
    pub alpha: Alphabet,
    /// The catalog tree type of Figure 1.
    pub ty: TreeType,
    /// The document.
    pub doc: DataTree,
}

/// Value coding used by catalog workloads: `cat` values are category
/// codes, `subcat` values subcategory codes, names/pictures arbitrary
/// numeric ids.
pub mod codes {
    /// Category "electronics" (the paper's `elec`).
    pub const ELEC: i64 = 1;
    /// Subcategory "camera".
    pub const CAMERA: i64 = 10;
    /// Subcategory "cdplayer".
    pub const CDPLAYER: i64 = 11;
}

/// Builds a catalog with `n_products` products: ~60% electronics, half
/// of them cameras; prices in `[10, 500)`; 0–2 pictures each.
pub fn catalog(n_products: usize, seed: u64) -> Catalog {
    let mut rng = DetRng::new(seed);
    let mut alpha = Alphabet::new();
    let ty = TreeTypeBuilder::new(&mut alpha)
        .root("catalog")
        .rule("catalog", &[("product", Mult::Plus)])
        .rule(
            "product",
            &[
                ("name", Mult::One),
                ("price", Mult::One),
                ("cat", Mult::One),
                ("picture", Mult::Star),
            ],
        )
        .rule("cat", &[("subcat", Mult::One)])
        .build()
        .expect("catalog type is well-formed");
    let catalog_l = alpha.get("catalog").unwrap();
    let product = alpha.get("product").unwrap();
    let name = alpha.get("name").unwrap();
    let price = alpha.get("price").unwrap();
    let cat = alpha.get("cat").unwrap();
    let subcat = alpha.get("subcat").unwrap();
    let picture = alpha.get("picture").unwrap();
    let mut gen = NidGen::new();
    let mut doc = DataTree::new(gen.fresh(), catalog_l, Rat::ZERO);
    for i in 0..n_products.max(1) {
        let root = doc.root();
        let p = doc
            .add_child(root, gen.fresh(), product, Rat::ZERO)
            .unwrap();
        doc.add_child(p, gen.fresh(), name, Rat::from(1000 + i as i64))
            .unwrap();
        doc.add_child(p, gen.fresh(), price, Rat::from(rng.range_i64(10, 500)))
            .unwrap();
        let is_elec = rng.bool(0.6);
        let cat_code = if is_elec {
            codes::ELEC
        } else {
            2 + rng.range_i64(0, 3)
        };
        let c = doc
            .add_child(p, gen.fresh(), cat, Rat::from(cat_code))
            .unwrap();
        let sub_code = if is_elec && rng.bool(0.5) {
            codes::CAMERA
        } else if is_elec {
            codes::CDPLAYER
        } else {
            20 + rng.range_i64(0, 5)
        };
        doc.add_child(c, gen.fresh(), subcat, Rat::from(sub_code))
            .unwrap();
        for _ in 0..rng.range_usize(0, 3) {
            doc.add_child(p, gen.fresh(), picture, Rat::from(rng.range_i64(0, 10_000)))
                .unwrap();
        }
    }
    Catalog { alpha, ty, doc }
}

/// Builds a library workload — a second domain exercising the `?` and
/// `+` multiplicities the catalog type lacks:
/// `library → book+`, `book → title author+ year isbn? review⋆`.
/// Values: title/author numeric ids; year in `[1900, 2030)`;
/// isbn a numeric id; review a rating `0..10`.
pub fn library(n_books: usize, seed: u64) -> Catalog {
    let mut rng = DetRng::new(seed);
    let mut alpha = Alphabet::new();
    let ty = TreeTypeBuilder::new(&mut alpha)
        .root("library")
        .rule("library", &[("book", Mult::Plus)])
        .rule(
            "book",
            &[
                ("title", Mult::One),
                ("author", Mult::Plus),
                ("year", Mult::One),
                ("isbn", Mult::Opt),
                ("review", Mult::Star),
            ],
        )
        .build()
        .expect("library type is well-formed");
    let library_l = alpha.get("library").unwrap();
    let book = alpha.get("book").unwrap();
    let title = alpha.get("title").unwrap();
    let author = alpha.get("author").unwrap();
    let year = alpha.get("year").unwrap();
    let isbn = alpha.get("isbn").unwrap();
    let review = alpha.get("review").unwrap();
    let mut gen = NidGen::new();
    let mut doc = DataTree::new(gen.fresh(), library_l, Rat::ZERO);
    for i in 0..n_books.max(1) {
        let root = doc.root();
        let b = doc.add_child(root, gen.fresh(), book, Rat::ZERO).unwrap();
        doc.add_child(b, gen.fresh(), title, Rat::from(2000 + i as i64))
            .unwrap();
        for _ in 0..rng.range_usize(1, 4) {
            doc.add_child(b, gen.fresh(), author, Rat::from(rng.range_i64(1, 50)))
                .unwrap();
        }
        doc.add_child(b, gen.fresh(), year, Rat::from(rng.range_i64(1900, 2030)))
            .unwrap();
        if rng.bool(0.7) {
            doc.add_child(
                b,
                gen.fresh(),
                isbn,
                Rat::from(rng.range_i64(10_000, 99_999)),
            )
            .unwrap();
        }
        for _ in 0..rng.range_usize(0, 4) {
            doc.add_child(b, gen.fresh(), review, Rat::from(rng.range_i64(0, 11)))
                .unwrap();
        }
    }
    Catalog { alpha, ty, doc }
}

/// A library query: books after `year_from` with their titles and
/// authors.
pub fn library_query_recent(alpha: &mut Alphabet, year_from: i64) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "library", Cond::True);
    let root = b.root();
    let bk = b.child(root, "book", Cond::True).unwrap();
    b.child(bk, "title", Cond::True).unwrap();
    b.child(bk, "author", Cond::True).unwrap();
    b.child(bk, "year", Cond::ge(Rat::from(year_from))).unwrap();
    b.build()
}

/// A library query: well-reviewed books (some review >= threshold).
pub fn library_query_well_reviewed(alpha: &mut Alphabet, threshold: i64) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "library", Cond::True);
    let root = b.root();
    let bk = b.child(root, "book", Cond::True).unwrap();
    b.child(bk, "title", Cond::True).unwrap();
    b.child(bk, "review", Cond::ge(Rat::from(threshold)))
        .unwrap();
    b.build()
}

/// Query 1 of the paper at a parameterized price bound.
pub fn catalog_query_price_below(alpha: &mut Alphabet, bound: i64) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    b.child(p, "price", Cond::lt(Rat::from(bound))).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::from(codes::ELEC))).unwrap();
    b.child(c, "subcat", Cond::True).unwrap();
    b.build()
}

/// Query 2 of the paper: cameras with their pictures.
pub fn catalog_query_camera_pictures(alpha: &mut Alphabet) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::from(codes::ELEC))).unwrap();
    b.child(c, "subcat", Cond::eq(Rat::from(codes::CAMERA)))
        .unwrap();
    b.child(p, "picture", Cond::True).unwrap();
    b.build()
}

/// The Example 3.2 adversarial family: `root{ a = i, b = i }` for
/// `i in 1..=n`, all answered empty. Refine's incomplete tree becomes
/// exponential in `n`; Refine⁺'s stays linear.
pub fn blowup_queries(alpha: &mut Alphabet, n: usize) -> Vec<PsQuery> {
    alpha.intern("root");
    alpha.intern("a");
    alpha.intern("b");
    (1..=n as i64)
        .map(|i| {
            let mut b = PsQueryBuilder::new(alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::eq(Rat::from(i))).unwrap();
            b.child(root, "b", Cond::eq(Rat::from(i))).unwrap();
            b.build()
        })
        .collect()
}

/// Linear (single-path) queries probing `root/a[= i]` — the Lemma 3.12
/// restriction under which the incomplete tree stays polynomial.
pub fn linear_queries(alpha: &mut Alphabet, n: usize) -> Vec<PsQuery> {
    let root = alpha.intern("root");
    let a = alpha.intern("a");
    (1..=n as i64)
        .map(|i| PsQuery::linear(&[(root, Cond::True), (a, Cond::eq(Rat::from(i)))]))
        .collect()
}

/// Samples a random member of a tree type: `+`/`⋆` entries get
/// `Binomial`-ish counts up to `fanout`, values drawn from `0..value_range`.
pub fn sample_tree(
    ty: &TreeType,
    root_label: Label,
    fanout: usize,
    value_range: i64,
    max_depth: usize,
    seed: u64,
) -> DataTree {
    let mut rng = DetRng::new(seed);
    let mut gen = NidGen::new();
    let mut t = DataTree::new(
        gen.fresh(),
        root_label,
        Rat::from(rng.range_i64(0, value_range.max(1))),
    );
    #[allow(clippy::too_many_arguments)]
    fn fill(
        ty: &TreeType,
        t: &mut DataTree,
        at: NodeRef,
        depth: usize,
        fanout: usize,
        value_range: i64,
        rng: &mut DetRng,
        gen: &mut NidGen,
    ) {
        if depth == 0 {
            return;
        }
        let atom = ty.atom(t.label(at));
        for &(l, m) in atom.entries() {
            let count = match m {
                Mult::One => 1,
                Mult::Opt => rng.range_usize(0, 2),
                Mult::Plus => rng.range_usize(1, fanout.max(1) + 1),
                Mult::Star => rng.range_usize(0, fanout + 1),
            };
            for _ in 0..count {
                let v = Rat::from(rng.range_i64(0, value_range.max(1)));
                let c = t.add_child(at, gen.fresh(), l, v).unwrap();
                fill(ty, t, c, depth - 1, fanout, value_range, rng, gen);
            }
        }
    }
    let root = t.root();
    fill(
        ty,
        &mut t,
        root,
        max_depth,
        fanout,
        value_range,
        &mut rng,
        &mut gen,
    );
    t
}

/// Random ps-queries shaped by a tree type: random downward paths with
/// random branching and conditions (`= v`, `< v`, `> v`, or `true`).
pub fn random_queries(
    alpha: &Alphabet,
    ty: &TreeType,
    root_label: Label,
    count: usize,
    value_range: i64,
    seed: u64,
) -> Vec<PsQuery> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut a2 = alpha.clone();
        let root_name = alpha.name(root_label).to_string();
        let mut b = PsQueryBuilder::new(&mut a2, &root_name, Cond::True);
        let broot = b.root();
        // Recursive descent following the type, randomly picking
        // children.
        #[allow(clippy::too_many_arguments)]
        fn descend(
            b: &mut PsQueryBuilder,
            alpha: &Alphabet,
            ty: &TreeType,
            label: Label,
            at: iixml_query::QNodeRef,
            depth: usize,
            value_range: i64,
            rng: &mut DetRng,
        ) {
            if depth == 0 {
                return;
            }
            let atom = ty.atom(label);
            for &(l, _) in atom.entries() {
                if !rng.bool(0.6) {
                    continue;
                }
                let cond = match rng.below(4) {
                    0 => Cond::True,
                    1 => Cond::eq(Rat::from(rng.range_i64(0, value_range.max(1)))),
                    2 => Cond::lt(Rat::from(rng.range_i64(1, value_range.max(1) + 1))),
                    _ => Cond::gt(Rat::from(rng.range_i64(0, value_range.max(1)))),
                };
                if let Ok(child) = b.child(at, alpha.name(l), cond) {
                    descend(b, alpha, ty, l, child, depth - 1, value_range, rng);
                }
            }
        }
        descend(
            &mut b,
            alpha,
            ty,
            root_label,
            broot,
            3,
            value_range,
            &mut rng,
        );
        out.push(b.build());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_typed() {
        for seed in 0..3 {
            let c = catalog(20, seed);
            assert!(c.ty.accepts(&c.doc));
            assert_eq!(c.doc.children(c.doc.root()).len(), 20);
        }
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = catalog(10, 7);
        let b = catalog(10, 7);
        assert!(a.doc.same_tree(&b.doc));
        let c = catalog(10, 8);
        assert!(!a.doc.same_tree(&c.doc));
    }

    #[test]
    fn catalog_queries_run() {
        let mut c = catalog(50, 1);
        let q1 = catalog_query_price_below(&mut c.alpha, 200);
        let q2 = catalog_query_camera_pictures(&mut c.alpha);
        let a1 = q1.eval(&c.doc);
        let a2 = q2.eval(&c.doc);
        // With 50 products, both almost surely return something.
        assert!(!a1.is_empty());
        assert!(!a2.is_empty());
    }

    #[test]
    fn blowup_family_shapes() {
        let mut alpha = Alphabet::new();
        let qs = blowup_queries(&mut alpha, 4);
        assert_eq!(qs.len(), 4);
        for q in &qs {
            assert_eq!(q.len(), 3);
            assert!(!q.is_linear());
        }
        let ls = linear_queries(&mut alpha, 4);
        assert!(ls.iter().all(PsQuery::is_linear));
    }

    #[test]
    fn library_is_well_typed() {
        for seed in 0..3 {
            let l = library(15, seed);
            assert!(l.ty.accepts(&l.doc));
        }
        let mut l = library(30, 9);
        let q1 = library_query_recent(&mut l.alpha, 1980);
        let q2 = library_query_well_reviewed(&mut l.alpha, 8);
        assert!(!q1.eval(&l.doc).is_empty());
        // q2 may or may not match; it must at least evaluate.
        let _ = q2.eval(&l.doc);
    }

    #[test]
    fn sampled_trees_satisfy_their_type() {
        let c = catalog(1, 0);
        let root = c.alpha.get("catalog").unwrap();
        for seed in 0..5 {
            let t = sample_tree(&c.ty, root, 3, 50, 4, seed);
            assert!(c.ty.accepts(&t), "sampled tree conforms");
        }
    }

    #[test]
    fn random_queries_are_wellformed() {
        let c = catalog(1, 0);
        let root = c.alpha.get("catalog").unwrap();
        let qs = random_queries(&c.alpha, &c.ty, root, 10, 50, 42);
        assert_eq!(qs.len(), 10);
        // They evaluate without panicking.
        for q in &qs {
            let _ = q.eval(&c.doc);
        }
    }
}
