//! A tiny deterministic property-test harness.
//!
//! The workspace's property tests ran on `proptest` in the seed, but an
//! external dependency cannot be guaranteed in offline builds, so tests
//! use this harness instead: a fixed default seed, a case count, and a
//! failure report that names the exact seed to replay.
//!
//! Environment knobs (both optional, both read per property):
//!
//! * `IIXML_PROPTEST_CASES` — cases per property (default 64);
//! * `IIXML_TEST_SEED` — base seed (default `0xA5EED`). CI pins both so
//!   runs are reproducible; see CONTRIBUTING.md.
//!
//! ```
//! iixml_gen::testkit::check("addition commutes", |rng| {
//!     let a = rng.range_i64(-1000, 1000);
//!     let b = rng.range_i64(-1000, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::DetRng;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Default base seed.
pub const DEFAULT_SEED: u64 = 0xA5EED;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Cases per property: `IIXML_PROPTEST_CASES` or [`DEFAULT_CASES`].
pub fn cases() -> usize {
    env_u64(iixml_obs::keys::ENV_PROPTEST_CASES, DEFAULT_CASES as u64) as usize
}

/// Base seed: `IIXML_TEST_SEED` or [`DEFAULT_SEED`].
pub fn base_seed() -> u64 {
    env_u64(iixml_obs::keys::ENV_TEST_SEED, DEFAULT_SEED)
}

/// Runs `property` once per case with an independent [`DetRng`]. On
/// panic, reports the property name and the case seed so the failure
/// replays with `IIXML_TEST_SEED=<seed> IIXML_PROPTEST_CASES=1`.
pub fn check<F>(name: &str, property: F)
where
    F: FnMut(&mut DetRng),
{
    check_with(name, usize::MAX, property);
}

/// Like [`check`], but capped at `max_cases` cases — for expensive
/// properties where the global default would dominate the test run.
/// `IIXML_PROPTEST_CASES` still lowers (never raises) the count.
pub fn check_with<F>(name: &str, max_cases: usize, mut property: F)
where
    F: FnMut(&mut DetRng),
{
    let n = cases().min(max_cases).max(1);
    let base = base_seed();
    for case in 0..n {
        let case_seed = DetRng::new(base).fork(case as u64).next_u64();
        let mut rng = DetRng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{n} — replay with \
                 IIXML_TEST_SEED={case_seed} IIXML_PROPTEST_CASES=1"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_every_case() {
        let mut ran = 0usize;
        check("counts cases", |_| ran += 1);
        assert_eq!(ran, cases().max(1));
    }

    #[test]
    fn check_reports_failures() {
        let result = std::panic::catch_unwind(|| {
            check("always fails", |_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn case_seeds_differ() {
        let mut seeds = Vec::new();
        check("collect seeds", |rng| seeds.push(rng.next_u64()));
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cases().max(1), "each case gets its own rng");
    }
}
