//! Querying incomplete trees (Section 3.3).
//!
//! Incomplete trees are a *strong representation system* for ps-queries:
//! for any incomplete tree `T` and ps-query `q` there is an incomplete
//! tree `q(T)` with `rep(q(T)) = q(rep(T))` (Theorem 3.14), computable in
//! PTIME for fixed Σ (the construction's disjunctive-normal-form step is
//! exponential in Σ only).
//!
//! Built on top of it:
//! * possible / certain non-emptiness of the answer (Corollary 3.18);
//! * possible / certain prefixes of the answer (Theorem 3.17);
//! * full answerability — "can `q` be answered from the data already
//!   fetched?", the answering-queries-using-views question
//!   (Corollary 3.15).
//!
//! One modeling note: the *empty* answer is a possible result of a query
//! but data trees are nonempty, so [`QueryOnIncomplete`] carries the
//! nonempty-answer description plus an `empty_possible` flag (the paper's
//! Example 2.2 encodes the same thing with an unsatisfiable root type
//! `r1`).

use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget};
use crate::itree::IncompleteTree;
use iixml_query::{PsQuery, QNodeRef};
use iixml_tree::{DataTree, Label, Mult};
use std::collections::HashMap;

/// The position component of an answer-type symbol: paired with a query
/// node, or inside a bar-extracted subtree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum QPos {
    At(QNodeRef),
    Bar,
}

/// The description of `q(rep(T))`: an incomplete tree for the nonempty
/// answers plus whether the empty answer can occur.
#[derive(Clone, Debug)]
pub struct QueryOnIncomplete {
    /// Incomplete tree whose `rep` is the set of *nonempty* answers.
    pub tree: IncompleteTree,
    /// Does some represented input yield the empty answer?
    pub empty_possible: bool,
}

/// The `Poss(m)` / `Cert(m)` sets of the Theorem 3.14 construction:
/// per query node `m`, the type symbols on which the subquery `q_m`
/// possibly / certainly produces output. Also used by the mediator's
/// completion generation (Theorem 3.19).
#[derive(Clone, Debug)]
pub struct MatchSets {
    /// `poss[&m][s.ix()]`: some tree of `rep(T_s)` matches `q_m`.
    pub poss: HashMap<QNodeRef, Vec<bool>>,
    /// `cert[&m][s.ix()]`: every tree of `rep(T_s)` matches `q_m`.
    pub cert: HashMap<QNodeRef, Vec<bool>>,
}

/// Computes [`MatchSets`] bottom-up over the query pattern, masking out
/// unproductive symbols (a symbol with empty `rep` possibly-matches
/// nothing).
pub fn match_sets(it: &IncompleteTree, q: &PsQuery) -> MatchSets {
    let ty = it.ty();
    let prod = ty.productive();
    let underlying = |s: Sym| -> Option<Label> {
        match ty.info(s).target {
            SymTarget::Lab(l) => Some(l),
            SymTarget::Node(n) => it.node_info(n).map(|i| i.label),
        }
    };
    let mut sets = MatchSets {
        poss: HashMap::new(),
        cert: HashMap::new(),
    };
    // Reversed preorder visits children before parents.
    for &m in q.preorder().iter().rev() {
        let kids = q.children(m).to_vec();
        let mut poss = vec![false; ty.sym_count()];
        let mut cert = vec![false; ty.sym_count()];
        for s in ty.syms() {
            if !prod[s.ix()] || underlying(s) != Some(q.label(m)) {
                continue;
            }
            let cond = &ty.info(s).cond;
            let p_cond = cond.overlaps(q.cond_set(m));
            let c_cond = !cond.is_empty() && cond.implies(q.cond_set(m));
            if p_cond {
                poss[s.ix()] = kids.is_empty()
                    || ty.mu(s).atoms().iter().any(|a| {
                        kids.iter()
                            .all(|&mi| a.entries().iter().any(|&(c, _)| sets.poss[&mi][c.ix()]))
                    });
            }
            if c_cond {
                cert[s.ix()] = !ty.mu(s).atoms().is_empty()
                    && ty.mu(s).atoms().iter().all(|a| {
                        kids.iter().all(|&mi| {
                            a.entries()
                                .iter()
                                .any(|&(c, mu)| mu.mandatory() && sets.cert[&mi][c.ix()])
                        })
                    });
            }
        }
        sets.poss.insert(m, poss);
        sets.cert.insert(m, cert);
    }
    sets
}

struct Builder<'a> {
    it: &'a IncompleteTree,
    q: &'a PsQuery,
    poss: HashMap<QNodeRef, Vec<bool>>,
    cert: HashMap<QNodeRef, Vec<bool>>,
}

impl Builder<'_> {
    /// Computes the `Poss(m)` / `Cert(m)` sets (proof of Theorem 3.14).
    fn compute_sets(&mut self) {
        let sets = match_sets(self.it, self.q);
        self.poss = sets.poss;
        self.cert = sets.cert;
    }

    /// Builds the answer type. Returns the new conditional tree type.
    fn build(&self) -> (ConditionalTreeType, bool) {
        let ty = self.it.ty();
        let mut out = ConditionalTreeType::new();
        let mut pair_of: HashMap<(Sym, QPos), Sym> = HashMap::new();

        // Create symbols on demand, with a worklist for µ construction.
        let mut worklist: Vec<(Sym, QPos)> = Vec::new();
        let ensure = |out: &mut ConditionalTreeType,
                      worklist: &mut Vec<(Sym, QPos)>,
                      pair_of: &mut HashMap<(Sym, QPos), Sym>,
                      s: Sym,
                      pos: QPos| {
            *pair_of.entry((s, pos)).or_insert_with(|| {
                let info = ty.info(s);
                let cond = match pos {
                    QPos::At(m) => info.cond.intersect(self.q.cond_set(m)),
                    QPos::Bar => info.cond.clone(),
                };
                let suffix = match pos {
                    QPos::At(m) => format!("@q{}", m.0),
                    QPos::Bar => "@bar".to_string(),
                };
                let p = out.add_symbol(format!("{}{}", info.name, suffix), info.target, cond);
                worklist.push((s, pos));
                p
            })
        };

        // Roots: (s, root_q) for possible root symbols.
        let rq = self.q.root();
        let mut roots = Vec::new();
        for &s in ty.roots() {
            if self.poss[&rq][s.ix()] {
                let p = ensure(&mut out, &mut worklist, &mut pair_of, s, QPos::At(rq));
                roots.push(p);
            }
        }
        out.set_roots(roots);

        // Saturate.
        let mut done = 0;
        while done < worklist.len() {
            let (s, pos) = worklist[done];
            done += 1;
            let p = pair_of[&(s, pos)];
            let mu = match pos {
                QPos::Bar => self.bar_mu(s, &mut |sy| {
                    ensure(&mut out, &mut worklist, &mut pair_of, sy, QPos::Bar)
                }),
                QPos::At(m) => {
                    if self.q.children(m).is_empty() {
                        if self.q.barred(m) {
                            self.bar_mu(s, &mut |sy| {
                                ensure(&mut out, &mut worklist, &mut pair_of, sy, QPos::Bar)
                            })
                        } else {
                            // Unbarred leaf: nothing below is extracted.
                            Disjunction::leaf()
                        }
                    } else {
                        self.match_mu(s, m, &mut |sy, pos| {
                            ensure(&mut out, &mut worklist, &mut pair_of, sy, pos)
                        })
                    }
                }
            };
            out.set_mu(p, mu);
        }

        // Empty answer possible iff some productive root is not certain.
        let prod = ty.productive();
        let empty_possible = ty
            .roots()
            .iter()
            .any(|&s| prod[s.ix()] && !self.cert[&rq][s.ix()]);
        (out, empty_possible)
    }

    /// µ for bar-extracted positions: carry the input type through
    /// verbatim (the whole subtree is part of the answer).
    fn bar_mu(&self, s: Sym, ensure: &mut dyn FnMut(Sym) -> Sym) -> Disjunction {
        let ty = self.it.ty();
        let atoms = ty
            .mu(s)
            .atoms()
            .iter()
            .map(|a| SAtom::new(a.entries().iter().map(|&(c, m)| (ensure(c), m)).collect()))
            .collect();
        Disjunction(atoms)
    }

    /// µ for a matched internal query node `m` (the heart of
    /// Theorem 3.14): keep only entries that can serve some child
    /// subquery, weaken multiplicities for possible-but-not-certain
    /// matches, and expand disjunctively so every child subquery
    /// contributes at least one answer node.
    fn match_mu(
        &self,
        s: Sym,
        m: QNodeRef,
        ensure: &mut dyn FnMut(Sym, QPos) -> Sym,
    ) -> Disjunction {
        let ty = self.it.ty();
        let kids = self.q.children(m);
        let mut out_atoms: Vec<SAtom> = Vec::new();
        'atoms: for atom in ty.mu(s).atoms() {
            // Group the surviving entries by the child subquery they can
            // serve (children have distinct labels, so each entry serves
            // at most one).
            let mut groups: Vec<Vec<(Sym, Mult)>> = Vec::with_capacity(kids.len());
            for &mi in kids {
                let mut group = Vec::new();
                for &(c, w) in atom.entries() {
                    if self.poss[&mi][c.ix()] {
                        // Weaken multiplicities for possible-but-not-
                        // certain matches: such an input child may
                        // produce no answer node.
                        let w2 = if self.cert[&mi][c.ix()] {
                            w
                        } else {
                            match w {
                                Mult::One => Mult::Opt,
                                Mult::Plus => Mult::Star,
                                other => other,
                            }
                        };
                        group.push((c, w2));
                    }
                }
                if group.is_empty() {
                    continue 'atoms; // child subquery unsatisfiable here
                }
                groups.push(group);
            }
            // Each group must contribute >= 1 answer node: if no entry is
            // already mandatory, expand over which one is promoted.
            let mut per_group: Vec<Vec<Vec<(Sym, Mult)>>> = Vec::new();
            for (gi, group) in groups.iter().enumerate() {
                let mi = kids[gi];
                let mapped: Vec<(Sym, Mult)> = group
                    .iter()
                    .map(|&(c, w)| (ensure(c, QPos::At(mi)), w))
                    .collect();
                if mapped.iter().any(|&(_, w)| w.mandatory()) {
                    per_group.push(vec![mapped]);
                } else {
                    let alts = (0..mapped.len())
                        .map(|host| {
                            mapped
                                .iter()
                                .enumerate()
                                .map(|(i, &(c, w))| {
                                    let w = if i == host {
                                        match w {
                                            Mult::Opt => Mult::One,
                                            Mult::Star => Mult::Plus,
                                            other => other,
                                        }
                                    } else {
                                        w
                                    };
                                    (c, w)
                                })
                                .collect()
                        })
                        .collect();
                    per_group.push(alts);
                }
            }
            // Cartesian product across groups.
            let mut combos: Vec<Vec<(Sym, Mult)>> = vec![Vec::new()];
            for alts in &per_group {
                let mut next = Vec::with_capacity(combos.len() * alts.len());
                for combo in &combos {
                    for alt in alts {
                        let mut c = combo.clone();
                        c.extend(alt.iter().copied());
                        next.push(c);
                    }
                }
                combos = next;
            }
            for combo in combos {
                out_atoms.push(SAtom::new(combo));
            }
        }
        out_atoms.sort_by(|x, y| x.entries().iter().cmp(y.entries().iter()));
        out_atoms.dedup();
        Disjunction(out_atoms)
    }
}

impl IncompleteTree {
    /// Computes `q(T)` — an incomplete tree representing exactly the set
    /// of answers `{ q(T0) | T0 ∈ rep(T) }` (Theorem 3.14), along with
    /// whether the empty answer is possible.
    pub fn query(&self, q: &PsQuery) -> QueryOnIncomplete {
        let trimmed = self.trim();
        let mut b = Builder {
            it: &trimmed,
            q,
            poss: HashMap::new(),
            cert: HashMap::new(),
        };
        b.compute_sets();
        let (ty, empty_possible) = b.build();
        // Infallible: the answer type only targets nodes of `trimmed`,
        // which came from a well-formed input.
        let tree = IncompleteTree::new(trimmed.nodes().clone(), ty)
            .expect("answer type reuses the input's data nodes")
            .trim();
        QueryOnIncomplete {
            tree,
            empty_possible,
        }
    }
}

impl QueryOnIncomplete {
    /// Can the answer be nonempty? (Corollary 3.18.)
    pub fn possible_nonempty(&self) -> bool {
        !self.tree.is_empty()
    }

    /// Is the answer nonempty on *every* represented input?
    /// (Corollary 3.18; requires the input's `rep` to be nonempty, which
    /// holds whenever this was produced from a consistent Refine chain.)
    pub fn certain_nonempty(&self) -> bool {
        !self.tree.is_empty() && !self.empty_possible
    }

    /// Is `t` a possible prefix of some answer? (Theorem 3.17.)
    pub fn possible_answer_prefix(&self, t: &DataTree) -> bool {
        self.tree.possible_prefix(t)
    }

    /// Is `t` a certain prefix of every answer? (Theorem 3.17.) The
    /// empty answer has no prefixes, so this is false whenever the empty
    /// answer is possible.
    pub fn certain_answer_prefix(&self, t: &DataTree) -> bool {
        !self.empty_possible && self.tree.certain_prefix(t)
    }

    /// Can the query be *fully answered* from the data already available
    /// (Corollary 3.15)? True iff the answer never involves
    /// non-instantiated nodes — i.e. every useful symbol of `q(T)`
    /// specializes a data node — and emptiness of the answer does not
    /// depend on the unknown part.
    pub fn fully_answerable(&self) -> bool {
        let trimmed = self.tree.trim();
        if self.empty_possible {
            // Mixed empty/nonempty outcomes are only consistent when no
            // answer is ever produced.
            return trimmed.ty().roots().is_empty();
        }
        let ty = trimmed.ty();
        let all_nodes = ty
            .syms()
            .all(|s| matches!(ty.info(s).target, SymTarget::Node(_)));
        all_nodes
    }

    /// When [`fully_answerable`](Self::fully_answerable), the unique
    /// answer (or `None` for the empty answer); unspecified otherwise.
    pub fn the_answer(&self) -> Option<DataTree> {
        self.tree.trim().data_tree()
    }

    /// The *sure part* of the answer (the paper's "sure answer
    /// modality", Section 1): the largest data-node tree guaranteed to
    /// be a prefix of **every** answer. `None` when no node is sure
    /// (in particular whenever the empty answer is possible).
    ///
    /// Construction: starting from the answer tree's root symbols
    /// (which must all target the same data node), keep a data node
    /// when, under every surviving parent symbol and in every disjunct,
    /// its entry is mandatory. This is sound by construction and
    /// verified against [`certain_answer_prefix`](Self::certain_answer_prefix)
    /// in tests.
    pub fn sure_answer(&self) -> Option<DataTree> {
        if self.empty_possible {
            return None;
        }
        let trimmed = self.tree.trim();
        let ty = trimmed.ty();
        // Every root symbol must pin the same data node.
        let mut root_node = None;
        for &r in ty.roots() {
            match ty.info(r).target {
                SymTarget::Node(n) => {
                    if *root_node.get_or_insert(n) != n {
                        return None;
                    }
                }
                SymTarget::Lab(_) => return None,
            }
        }
        let root = root_node?;
        let info = trimmed.node_info(root)?;
        let mut out = DataTree::new(root, info.label, info.value);
        // sure_syms[n] = symbols targeting node n that can type it in
        // some answer; a child node is sure when mandatory in every
        // atom of every such symbol of its (sure) parent.
        let mut frontier = vec![root];
        while let Some(n) = frontier.pop() {
            let parent_syms: Vec<Sym> = ty
                .syms()
                .filter(|&s| matches!(ty.info(s).target, SymTarget::Node(m) if m == n))
                .collect();
            // Candidate children: data nodes appearing in any atom.
            let mut candidates: Vec<iixml_tree::Nid> = Vec::new();
            for &s in &parent_syms {
                for atom in ty.mu(s).atoms() {
                    for &(c, _) in atom.entries() {
                        if let SymTarget::Node(m) = ty.info(c).target {
                            if !candidates.contains(&m) {
                                candidates.push(m);
                            }
                        }
                    }
                }
            }
            for child in candidates {
                let sure = parent_syms.iter().all(|&s| {
                    !ty.mu(s).atoms().is_empty()
                        && ty.mu(s).atoms().iter().all(|atom| {
                            atom.entries().iter().any(|&(c, m)| {
                                m.mandatory()
                                    && matches!(ty.info(c).target,
                                        SymTarget::Node(mm) if mm == child)
                            })
                        })
                });
                if sure {
                    if let Some(ci) = trimmed.node_info(child) {
                        // Infallible: `n` was pushed on the frontier only
                        // after being inserted into `out`.
                        let parent_ref = out.by_nid(n).expect("parent inserted first");
                        if out.add_child(parent_ref, child, ci.label, ci.value).is_ok() {
                            frontier.push(child);
                        }
                    }
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, SymTarget};
    use crate::itree::NodeInfo;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{Alphabet, Nid, NidGen};
    use iixml_values::{Cond, IntervalSet, Rat};
    use std::collections::BTreeMap;

    /// Example 2.2: data nodes r(root,=0), n(a,=0); extra a != 0
    /// children possible; all a's may have b children. Query:
    /// root / a / b (all conditions true).
    fn example() -> (IncompleteTree, Alphabet) {
        let alpha = Alphabet::from_names(["root", "a", "b"]);
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Node(Nid(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let n = ty.add_symbol(
            "n",
            SymTarget::Node(Nid(1)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let a = ty.add_symbol(
            "a",
            SymTarget::Lab(Label(1)),
            Cond::ne(Rat::ZERO).to_intervals(),
        );
        let b = ty.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(n, Mult::One), (a, Mult::Star)])),
        );
        ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        (IncompleteTree::new(nodes, ty).unwrap(), alpha)
    }

    fn example_query(alpha: &mut Alphabet) -> iixml_query::PsQuery {
        let mut bld = PsQueryBuilder::new(alpha, "root", Cond::True);
        let root = bld.root();
        let a = bld.child(root, "a", Cond::True).unwrap();
        bld.child(a, "b", Cond::True).unwrap();
        bld.build()
    }

    #[test]
    fn example_2_2_answer_description() {
        let (it, mut alpha) = example();
        let q = example_query(&mut alpha);
        let ans = it.query(&q);
        // The empty answer is possible (no a has a b child).
        assert!(ans.empty_possible);
        assert!(ans.possible_nonempty());
        assert!(!ans.certain_nonempty());

        // Possible nonempty answers include: r with n and one b below n.
        let mut a1 = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        let nref = a1
            .add_child(a1.root(), Nid(1), Label(1), Rat::ZERO)
            .unwrap();
        a1.add_child(nref, Nid(50), Label(2), Rat::from(3)).unwrap();
        assert!(ans.tree.contains(&a1), "r-n-b is a possible answer");

        // r with an extra a(=5) child carrying a b: possible.
        let mut a2 = a1.clone();
        let extra = a2
            .add_child(a2.root(), Nid(60), Label(1), Rat::from(5))
            .unwrap();
        a2.add_child(extra, Nid(61), Label(2), Rat::ZERO).unwrap();
        assert!(ans.tree.contains(&a2));

        // r with n but n has no b: NOT an answer (answers include n only
        // when a b was matched below it).
        let mut bad = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        bad.add_child(bad.root(), Nid(1), Label(1), Rat::ZERO)
            .unwrap();
        assert!(!ans.tree.contains(&bad));

        // An `a` child with value 0 is impossible (the star type demands
        // != 0 and node n is the only a=0).
        let mut bad2 = a1.clone();
        let e = bad2
            .add_child(bad2.root(), Nid(70), Label(1), Rat::ZERO)
            .unwrap();
        bad2.add_child(e, Nid(71), Label(2), Rat::ZERO).unwrap();
        assert!(!ans.tree.contains(&bad2));
    }

    #[test]
    fn answers_of_witnesses_are_represented() {
        let (it, mut alpha) = example();
        let q = example_query(&mut alpha);
        let ans = it.query(&q);
        // Sample a witness input and check its actual answer is
        // represented.
        let w = it.witness(&mut NidGen::starting_at(100)).unwrap();
        let actual = q.eval(&w);
        match actual.tree {
            Some(t) => assert!(ans.tree.contains(&t)),
            None => assert!(ans.empty_possible),
        }
    }

    #[test]
    fn witnesses_of_answer_tree_are_valid_answers() {
        let (it, mut alpha) = example();
        let q = example_query(&mut alpha);
        let ans = it.query(&q);
        let w = ans.tree.witness(&mut NidGen::starting_at(200)).unwrap();
        // Re-evaluating q on the answer must reproduce it exactly
        // (answers are fixpoints of q: q(q(T)) = q(T) for prefix
        // selections whose conditions the answer already satisfies).
        let again = q.eval(&w);
        assert!(again.tree.unwrap().same_tree(&w));
    }

    #[test]
    fn fully_answerable_cases() {
        let (it, mut alpha) = example();
        // Query: root/a — answered by data nodes? The extra a's (!= 0)
        // also match, so NOT fully answerable.
        let q1 = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::True).unwrap();
            b.build()
        };
        let ans1 = it.query(&q1);
        assert!(!ans1.fully_answerable());

        // Query: root/a[=0] — only node n qualifies (star a's are != 0):
        // fully answerable, answer = r-n.
        let q2 = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::eq(Rat::ZERO)).unwrap();
            b.build()
        };
        let ans2 = it.query(&q2);
        assert!(ans2.certain_nonempty());
        assert!(ans2.fully_answerable(), "only instantiated nodes answer");
        let t = ans2.the_answer().unwrap();
        assert_eq!(t.len(), 2);

        // Query: root/a[=7] — never matches anything… wait, star a's
        // allow value 7, so the answer varies: not fully answerable.
        let q3 = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::eq(Rat::from(7))).unwrap();
            b.build()
        };
        let ans3 = it.query(&q3);
        assert!(ans3.empty_possible);
        assert!(ans3.possible_nonempty());
        assert!(!ans3.fully_answerable());

        // Query: root/c (label unknown to the type): certainly empty,
        // hence trivially fully answerable.
        let q4 = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "c", Cond::True).unwrap();
            b.build()
        };
        let ans4 = it.query(&q4);
        assert!(!ans4.possible_nonempty());
        assert!(ans4.fully_answerable());
        assert!(ans4.the_answer().is_none());
    }

    #[test]
    fn certain_and_possible_answer_prefixes() {
        let (it, mut alpha) = example();
        // Query root/a[=0]: the answer is always exactly r-n.
        let q = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::eq(Rat::ZERO)).unwrap();
            b.build()
        };
        let ans = it.query(&q);
        let just_root = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        assert!(ans.certain_answer_prefix(&just_root));
        assert!(ans.possible_answer_prefix(&just_root));
        let mut rn = just_root.clone();
        rn.add_child(rn.root(), Nid(1), Label(1), Rat::ZERO)
            .unwrap();
        assert!(ans.certain_answer_prefix(&rn));
        // A b-node below n is never in this answer.
        let mut rnb = rn.clone();
        let nref = rnb.by_nid(Nid(1)).unwrap();
        rnb.add_child(nref, Nid(9), Label(2), Rat::ZERO).unwrap();
        assert!(!ans.possible_answer_prefix(&rnb));
    }

    #[test]
    fn sure_answer_is_a_certain_prefix() {
        let (it, mut alpha) = example();
        // root/a[=0]: certainly answers with r-n.
        let q = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::eq(Rat::ZERO)).unwrap();
            b.build()
        };
        let ans = it.query(&q);
        let sure = ans.sure_answer().expect("certainly nonempty");
        assert_eq!(sure.len(), 2);
        assert!(ans.certain_answer_prefix(&sure));
        // root/a (any a): empty impossible? node n always matches (a=0
        // and the subquery is a leaf) -> certainly nonempty; the sure
        // part is r-n (extra a's not guaranteed).
        let q2 = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::True).unwrap();
            b.build()
        };
        let ans2 = it.query(&q2);
        assert!(ans2.certain_nonempty());
        let sure2 = ans2.sure_answer().expect("nonempty");
        assert!(ans2.certain_answer_prefix(&sure2));
        assert!(sure2.by_nid(Nid(1)).is_some());
        // root/a/b: the empty answer is possible -> no sure part.
        let q3 = example_query(&mut alpha);
        let ans3 = it.query(&q3);
        assert!(ans3.empty_possible);
        assert!(ans3.sure_answer().is_none());
    }

    #[test]
    fn root_label_mismatch_gives_certainly_empty() {
        let (it, mut alpha) = example();
        let q = PsQueryBuilder::new(&mut alpha, "nonsense", Cond::True).build();
        let ans = it.query(&q);
        assert!(!ans.possible_nonempty());
        assert!(ans.empty_possible);
        assert!(ans.fully_answerable());
    }

    #[test]
    fn root_condition_filters_answers() {
        let (it, mut alpha) = example();
        // Root value is pinned to 0: a root condition = 5 never matches.
        let q = PsQueryBuilder::new(&mut alpha, "root", Cond::eq(Rat::from(5))).build();
        let ans = it.query(&q);
        assert!(!ans.possible_nonempty());
        // Condition = 0 always matches: the answer is exactly the root.
        let q = PsQueryBuilder::new(&mut alpha, "root", Cond::eq(Rat::ZERO)).build();
        let ans = it.query(&q);
        assert!(ans.certain_nonempty());
        assert!(ans.fully_answerable());
        assert_eq!(ans.the_answer().unwrap().len(), 1);
    }

    #[test]
    fn query_deeper_than_the_type_is_empty() {
        let (it, mut alpha) = example();
        // root/a/b/<deeper>: b is a leaf in the type.
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        let a = bld.child(root, "a", Cond::True).unwrap();
        let b = bld.child(a, "b", Cond::True).unwrap();
        bld.child(b, "a", Cond::True).unwrap();
        let q = bld.build();
        let ans = it.query(&q);
        assert!(!ans.possible_nonempty());
        assert!(ans.fully_answerable(), "certainly empty is fully known");
    }

    #[test]
    fn querying_an_empty_rep() {
        // Incomplete tree with empty rep: no answers at all.
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::empty());
        ty.set_mu(r, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(BTreeMap::new(), ty).unwrap();
        assert!(it.is_empty());
        let mut alpha = Alphabet::from_names(["root"]);
        let q = PsQueryBuilder::new(&mut alpha, "root", Cond::True).build();
        let ans = it.query(&q);
        assert!(!ans.possible_nonempty());
        assert!(!ans.empty_possible, "no worlds at all");
        assert!(!ans.certain_nonempty());
    }

    #[test]
    fn barred_query_carries_subtree_through() {
        let (it, mut alpha) = example();
        // Query root / ā[=0]: extract node n's whole subtree.
        let q = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.barred_child(root, "a", Cond::eq(Rat::ZERO)).unwrap();
            b.build()
        };
        let ans = it.query(&q);
        assert!(ans.certain_nonempty());
        // Answers may include b-children below n (unknown content).
        let mut with_b = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        let nref = with_b
            .add_child(with_b.root(), Nid(1), Label(1), Rat::ZERO)
            .unwrap();
        with_b
            .add_child(nref, Nid(80), Label(2), Rat::from(4))
            .unwrap();
        assert!(ans.tree.contains(&with_b));
        // And also no b at all.
        let mut no_b = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        no_b.add_child(no_b.root(), Nid(1), Label(1), Rat::ZERO)
            .unwrap();
        assert!(ans.tree.contains(&no_b));
        // Not fully answerable: the subtree content is unknown.
        assert!(!ans.fully_answerable());
    }
}
