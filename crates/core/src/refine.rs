//! Algorithm Refine (Section 3.1): incremental acquisition of incomplete
//! information from query-answer pairs.
//!
//! Two building blocks, then the algorithm:
//!
//! 1. [`query_answer_tree`] (Lemma 3.2) — from a ps-query `q` and its
//!    answer `A`, builds the incomplete tree `T_{q,A}` with
//!    `rep(T_{q,A}) = q⁻¹(A) = { T | q(T) = A }`. The specialized types
//!    are exactly the paper's: `τ_a` (unconstrained subtree with root
//!    label `a`), `τ_n` (answer node `n`), `τ̄_m` (nodes violating the
//!    condition of query node `m`), and `τ̂_m` (nodes satisfying `m`'s
//!    condition under which `m`'s subquery cannot be matched).
//! 2. [`intersect`] (Lemma 3.3) — the product of two incomplete trees,
//!    with `rep(T) = rep(T1) ∩ rep(T2)`. Multiplicity atoms are joined by
//!    the `⋊⋉` operation; our implementation generalizes the paper's
//!    unique-matching argument to a (small) disjunctive expansion when a
//!    mandatory entry has several compatible partners, which keeps the
//!    construction correct on arbitrary inputs while coinciding with the
//!    paper's on unambiguous ones.
//!
//! [`Refiner`] chains these: `T ← trim(T ∩ T_{q,A})` per query-answer
//! pair (Theorem 3.4: polynomial per step — though the result can grow
//! exponentially in the *whole sequence*, see Example 3.2 and the
//! `blowup` bench).

use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget};
use crate::itree::{IncompleteTree, ItreeError, NodeInfo};
use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_query::{Answer, MatchKind, PsQuery, QNodeRef};
use iixml_tree::{Alphabet, DataTree, Label, Mult, Nid};
use iixml_values::IntervalSet;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Minimum symbol pairs per worker before `intersect_reference` spreads
/// the ⋊⋉ product over threads (below this, spawn overhead dominates).
const INTERSECT_GRAIN: usize = 16;

/// Symbol pairs per chunk when `intersect` fans the ⋊⋉ product out
/// (`IIXML_PAR_CHUNK` overrides).
const INTERSECT_CHUNK: usize = 16;

/// Pair count at or below which `intersect` computes µ's inline on the
/// calling thread (`IIXML_PAR_CUTOFF` overrides).
const INTERSECT_CUTOFF: usize = 64;

/// Maximum `n1 * n2` for the dense pair table; larger products fall
/// back to the hash table (4M entries = 16 MiB of `u32`).
const DENSE_PAIR_LIMIT: usize = 1 << 22;

/// Refinement steps performed (all chains).
static OBS_STEPS: LazyCounter = LazyCounter::new(keys::CORE_REFINE_STEPS);
/// Size of each `T_{q,A}` built by [`query_answer_tree`].
static OBS_TQA_SIZE: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_TQA_SIZE);
/// Atoms emitted per `⋊⋉` join of two multiplicity atoms.
static OBS_JOIN_FANOUT: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_JOIN_FANOUT);
/// Joins whose disjunctive expansion produced more than one atom
/// (ambiguous partner choices — the paper's unique-matching case is 1).
static OBS_EXPANSIONS: LazyCounter = LazyCounter::new(keys::CORE_REFINE_DISJUNCTIVE_EXPANSIONS);
/// Wall time of the ⋊⋉ product per step.
static OBS_INTERSECT_NS: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_INTERSECT_NS);
/// Wall time of trim per step.
static OBS_TRIM_NS: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_TRIM_NS);
/// Wall time of bisimulation minimization per step.
static OBS_MINIMIZE_NS: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_MINIMIZE_NS);
/// Size of the maintained incomplete tree after each step.
static OBS_STEP_SIZE: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_STEP_SIZE);

/// Builds `T_{q,A}` (Lemma 3.2): the unambiguous incomplete tree whose
/// `rep` is exactly the set of data trees on which `q` returns `A`.
///
/// `alpha` supplies the full element alphabet Σ (the construction's
/// "else" entries quantify over all of Σ, which is why the paper's
/// complexity bound is `O((|q| + |A|) · |Σ|)`).
///
/// Fails with [`ItreeError::MissingProvenance`] when an answer node has
/// no recorded match provenance — impossible for answers produced by
/// [`PsQuery::eval`], but reachable when the answer was shipped by an
/// untrusted source (truncated or fabricated answers).
pub fn query_answer_tree(
    q: &PsQuery,
    ans: &Answer,
    alpha: &Alphabet,
) -> Result<IncompleteTree, ItreeError> {
    let labels: Vec<Label> = alpha.labels().collect();
    let mut ty = ConditionalTreeType::new();

    // τ_a for every a in Σ: anything-goes subtree rooted with label a.
    let any: HashMap<Label, Sym> = labels
        .iter()
        .map(|&l| {
            let s = ty.add_symbol(
                format!("any:{}", alpha.name(l)),
                SymTarget::Lab(l),
                IntervalSet::all(),
            );
            (l, s)
        })
        .collect();
    let all_star = SAtom::new(labels.iter().map(|&l| (any[&l], Mult::Star)).collect());
    // One shared µ for every τ_a, τ̄_m, and unexplored answer node: the
    // anything-goes atom is O(|Σ|) large and referenced O(|Σ| + |q| + |A|)
    // times, so sharing it turns a quadratic allocation site into a
    // constant one.
    let all_star_mu = Arc::new(Disjunction::single(all_star.clone()));
    for &l in &labels {
        ty.set_mu_shared(any[&l], all_star_mu.clone());
    }

    // τ̄_m and τ̂_m for every query node m.
    let qnodes = q.preorder();
    let mut bar: HashMap<QNodeRef, Sym> = HashMap::new();
    let mut hat: HashMap<QNodeRef, Sym> = HashMap::new();
    for &m in qnodes {
        let b = ty.add_symbol(
            format!("viol:q{}", m.0),
            SymTarget::Lab(q.label(m)),
            q.cond_set(m).complement(),
        );
        ty.set_mu_shared(b, all_star_mu.clone());
        bar.insert(m, b);
        if !q.children(m).is_empty() {
            let h = ty.add_symbol(
                format!("fail:q{}", m.0),
                SymTarget::Lab(q.label(m)),
                q.cond_set(m).clone(),
            );
            hat.insert(m, h);
        }
    }
    // µ(τ̂_m) = ∨_i  τ̄_{m_i}⋆ τ̂_{m_i}⋆ · (τ_a⋆ for a ≠ λ(m_i)):
    // below this node, the subquery of at least one child m_i matches
    // nothing.
    for (&m, &h) in &hat {
        let mut atoms = Vec::with_capacity(q.children(m).len());
        for &mi in q.children(m) {
            let mut entries: Vec<(Sym, Mult)> = Vec::with_capacity(labels.len() + 1);
            entries.push((bar[&mi], Mult::Star));
            if let Some(&hi) = hat.get(&mi) {
                entries.push((hi, Mult::Star));
            }
            for &l in &labels {
                if l != q.label(mi) {
                    entries.push((any[&l], Mult::Star));
                }
            }
            atoms.push(SAtom::new(entries));
        }
        ty.set_mu(h, Disjunction(atoms));
    }

    // τ_n for every answer node, plus the data-node table.
    let mut nodes: BTreeMap<Nid, NodeInfo> = BTreeMap::new();
    let mut node_sym: HashMap<Nid, Sym> = HashMap::new();
    if let Some(a) = &ans.tree {
        for r in a.preorder() {
            let nid = a.nid(r);
            nodes.insert(
                nid,
                NodeInfo {
                    label: a.label(r),
                    value: a.value(r),
                },
            );
            let s = ty.add_symbol(
                format!("node:{nid}"),
                SymTarget::Node(nid),
                IntervalSet::eq(a.value(r)),
            );
            node_sym.insert(nid, s);
        }
        for r in a.preorder() {
            let nid = a.nid(r);
            let s = node_sym[&nid];
            let kind = ans
                .provenance
                .get(&nid)
                .copied()
                .ok_or(ItreeError::MissingProvenance(nid))?;
            // Indexing is safe: node_sym holds every node of `a` (both
            // maps were filled from the same preorder walk just above).
            let kid_entries: Vec<(Sym, Mult)> = a
                .children(r)
                .iter()
                .map(|&c| (node_sym[&a.nid(c)], Mult::One))
                .collect();
            let mu = match kind {
                // The whole subtree was extracted (the node descends
                // from a barred match, or is itself a barred match):
                // children are exactly those present in A.
                MatchKind::BarDescendant(_) => {
                    Arc::new(Disjunction::single(SAtom::new(kid_entries)))
                }
                MatchKind::Matched(m) if q.barred(m) => {
                    Arc::new(Disjunction::single(SAtom::new(kid_entries)))
                }
                MatchKind::Matched(m) if q.children(m).is_empty() => {
                    // The query did not explore below this node.
                    all_star_mu.clone()
                }
                MatchKind::Matched(m) => {
                    let mut entries = kid_entries;
                    let qkid_labels: Vec<Label> =
                        q.children(m).iter().map(|&mi| q.label(mi)).collect();
                    for &mi in q.children(m) {
                        entries.push((bar[&mi], Mult::Star));
                        if let Some(&hi) = hat.get(&mi) {
                            entries.push((hi, Mult::Star));
                        }
                    }
                    for &l in &labels {
                        if !qkid_labels.contains(&l) {
                            entries.push((any[&l], Mult::Star));
                        }
                    }
                    Arc::new(Disjunction::single(SAtom::new(entries)))
                }
            };
            ty.set_mu_shared(s, mu);
        }
        ty.add_root(node_sym[&a.nid(a.root())]);
    } else {
        // Empty answer: the root either has the wrong label (τ_a for
        // a ≠ λ(r)), violates the root condition (τ̄_r), or satisfies it
        // but the pattern fails below (τ̂_r).
        let r = q.root();
        ty.add_root(bar[&r]);
        if let Some(&h) = hat.get(&r) {
            ty.add_root(h);
        }
        for &l in &labels {
            if l != q.label(r) {
                ty.add_root(any[&l]);
            }
        }
    }

    // Infallible by construction: every node-targeted symbol was created
    // from a node inserted into `nodes` in the same loop.
    let t = IncompleteTree::new(nodes, ty).expect("construction references only answer nodes");
    OBS_TQA_SIZE.observe(t.size() as u64);
    Ok(t)
}

/// The meet of two multiplicities as occurrence-count bounds.
fn meet_bounds(a: Mult, b: Mult) -> (bool, bool) {
    // (mandatory, bounded-to-one)
    (
        a.mandatory() || b.mandatory(),
        !a.repeatable() || !b.repeatable(),
    )
}

fn mult_from(mandatory: bool, bounded: bool) -> Mult {
    match (mandatory, bounded) {
        (true, true) => Mult::One,
        (true, false) => Mult::Plus,
        (false, true) => Mult::Opt,
        (false, false) => Mult::Star,
    }
}

/// The product-symbol table of one `intersect` call: maps `(s1, s2)`
/// to the product symbol. Dense (one flat `u32` vector indexed by
/// `s1.ix() * n2 + s2.ix()`) whenever the pair space fits
/// [`DENSE_PAIR_LIMIT`] — the ⋊⋉ join probes this table for every
/// entry pair of every atom pair, and an array load beats a hash per
/// probe by an order of magnitude. Oversized products fall back to the
/// hash map (keyed lookups only; iteration always goes through the
/// in-order `keys` vector).
enum PairTable {
    Dense { n2: usize, slots: Vec<u32> },
    Sparse(HashMap<(Sym, Sym), Sym>),
}

impl PairTable {
    fn for_sizes(n1: usize, n2: usize) -> PairTable {
        if n1.saturating_mul(n2) <= DENSE_PAIR_LIMIT {
            PairTable::Dense {
                n2: n2.max(1),
                slots: vec![u32::MAX; n1 * n2],
            }
        } else {
            PairTable::Sparse(HashMap::new())
        }
    }

    fn insert(&mut self, s1: Sym, s2: Sym, p: Sym) {
        match self {
            PairTable::Dense { n2, slots } => {
                if let Some(slot) = slots.get_mut(s1.ix() * *n2 + s2.ix()) {
                    *slot = p.0;
                }
            }
            PairTable::Sparse(map) => {
                map.insert((s1, s2), p);
            }
        }
    }

    #[inline]
    fn get(&self, s1: Sym, s2: Sym) -> Option<Sym> {
        match self {
            PairTable::Dense { n2, slots } => slots
                .get(s1.ix() * *n2 + s2.ix())
                .copied()
                .filter(|&id| id != u32::MAX)
                .map(Sym),
            PairTable::Sparse(map) => map.get(&(s1, s2)).copied(),
        }
    }
}

/// Per-worker scratch arena for the ⋊⋉ join: every buffer the join
/// needs per atom pair (and per emitted combination), allocated once
/// per worker and reused across the whole chunk. The buffers carry no
/// state between items — each use starts with `clear()` — so reuse
/// cannot affect results, only allocator traffic.
#[derive(Default)]
struct JoinScratch {
    pairs: Vec<(usize, usize, Sym)>,
    constraints: Vec<Constraint>,
    included: Vec<bool>,
    designated: Vec<bool>,
    choice: Vec<Option<usize>>,
}

/// Intersection of two incomplete trees (Lemma 3.3):
/// `rep(result) = rep(t1) ∩ rep(t2)`.
///
/// Fails with [`ItreeError::IncompatibleNode`] when the trees disagree on
/// a shared data node's label or value (in which case the intersection is
/// empty anyway — the paper assumes compatibility).
pub fn intersect(t1: &IncompleteTree, t2: &IncompleteTree) -> Result<IncompleteTree, ItreeError> {
    // Union the data nodes, checking compatibility. Clone the larger
    // side and fold the smaller one in, so the refinement loop (which
    // intersects a shrinking tree with a fresh product each round) never
    // rehashes the big map.
    let (base, other) = if t1.nodes().len() >= t2.nodes().len() {
        (t1, t2)
    } else {
        (t2, t1)
    };
    let mut nodes = base.nodes().clone();
    for (&n, &info) in other.nodes() {
        match nodes.get(&n) {
            Some(&prev) if prev != info => return Err(ItreeError::IncompatibleNode(n)),
            _ => {
                nodes.insert(n, info);
            }
        }
    }

    let (ty1, ty2) = (t1.ty(), t2.ty());
    let mut ty = ConditionalTreeType::new();
    let mut pair_of = PairTable::for_sizes(ty1.sym_count(), ty2.sym_count());
    // Pairs are discovered by ascending (s1, s2) loops, so `keys` is
    // born sorted — every later pass (roots, µ scheduling, set_mu)
    // walks it in that deterministic order and nothing ever iterates
    // the pair table itself.
    let mut keys: Vec<(Sym, Sym, Sym)> = Vec::new();

    for s1 in ty1.syms() {
        let i1 = ty1.info(s1);
        let n1 = truncate(&i1.name);
        for s2 in ty2.syms() {
            let i2 = ty2.info(s2);
            let target = match (i1.target, i2.target) {
                (SymTarget::Lab(a), SymTarget::Lab(b)) if a == b => SymTarget::Lab(a),
                (SymTarget::Node(n), SymTarget::Node(m)) if n == m => SymTarget::Node(n),
                (SymTarget::Node(n), SymTarget::Lab(b)) => {
                    // Only when the node is unknown to t2 and its label
                    // matches: in rep(t2) that node is an ordinary
                    // b-labeled node.
                    if t2.nodes().contains_key(&n) || t1.node_info(n).map(|i| i.label) != Some(b) {
                        continue;
                    }
                    SymTarget::Node(n)
                }
                (SymTarget::Lab(a), SymTarget::Node(m)) => {
                    if t1.nodes().contains_key(&m) || t2.node_info(m).map(|i| i.label) != Some(a) {
                        continue;
                    }
                    SymTarget::Node(m)
                }
                _ => continue,
            };
            let cond = i1.cond.intersect(&i2.cond);
            if cond.is_empty() {
                continue; // unsatisfiable pair can never type a node
            }
            // Same "{n1}&{n2}" string as the reference path, built by
            // plain pushes: the formatting machinery was a visible
            // fraction of symbol construction at ~30k product symbols.
            let n2 = truncate(&i2.name);
            let mut name = String::with_capacity(n1.len() + 1 + n2.len());
            name.push_str(n1);
            name.push('&');
            name.push_str(n2);
            let p = ty.add_symbol(name, target, cond);
            pair_of.insert(s1, s2, p);
            keys.push((s1, s2, p));
        }
    }

    // Roots.
    for &(s1, s2, p) in &keys {
        if ty1.roots().contains(&s1) && ty2.roots().contains(&s2) {
            ty.add_root(p);
        }
    }

    // µ of each pair: union over disjunct pairs of the joined atoms.
    // Each pair's µ depends only on the (frozen) input types and the
    // complete pair table, so the ⋊⋉ expansion — the hot inner loop of
    // Algorithm Refine — parallelizes per chunk of pairs,
    // order-preserving by construction.
    if iixml_par::threads() == 1 || keys.len() <= iixml_par::cutoff(INTERSECT_CUTOFF) {
        // Width-1 / small products: compute and assign each µ directly.
        // No task vector, no intermediate µ buffer — that bookkeeping
        // was pure overhead in BENCH_pr3's 1-thread column.
        let mut scratch = JoinScratch::default();
        for &(s1, s2, p) in &keys {
            let mu = pair_mu(ty1, ty2, s1, s2, &pair_of, &mut scratch);
            ty.set_mu(p, mu);
        }
    } else {
        let mus: Vec<Disjunction> = iixml_par::par_map_chunks(
            &keys,
            INTERSECT_CHUNK,
            0,
            JoinScratch::default,
            |scratch, &(s1, s2, _), _| pair_mu(ty1, ty2, s1, s2, &pair_of, scratch),
        );
        for (&(_, _, p), mu) in keys.iter().zip(mus) {
            ty.set_mu(p, mu);
        }
    }

    IncompleteTree::new(nodes, ty)
}

/// µ of one product symbol: the ⋊⋉ join over all atom pairs of the two
/// input µ's, deduplicated.
fn pair_mu(
    ty1: &ConditionalTreeType,
    ty2: &ConditionalTreeType,
    s1: Sym,
    s2: Sym,
    pair_of: &PairTable,
    scratch: &mut JoinScratch,
) -> Disjunction {
    let mut atoms: Vec<SAtom> = Vec::new();
    for a1 in ty1.mu(s1).atoms() {
        for a2 in ty2.mu(s2).atoms() {
            join_atoms(a1, a2, pair_of, scratch, &mut atoms);
        }
    }
    atoms.sort_by(|x, y| x.entries().iter().cmp(y.entries().iter()));
    atoms.dedup();
    Disjunction(atoms)
}

/// The pre-interning structural intersection, preserved verbatim:
/// hash-table pair lookups, per-pair task scheduling, per-call
/// allocation of every join buffer. Kept as (a) the equivalence oracle
/// for `tests/intern_equiv.rs` — the table-driven path must serialize
/// byte-identically to this one — and (b) the "pre" row of the
/// `cpubench` group, so the committed speedup is measured against the
/// real old code.
pub fn intersect_reference(
    t1: &IncompleteTree,
    t2: &IncompleteTree,
) -> Result<IncompleteTree, ItreeError> {
    let (base, other) = if t1.nodes().len() >= t2.nodes().len() {
        (t1, t2)
    } else {
        (t2, t1)
    };
    let mut nodes = base.nodes().clone();
    for (&n, &info) in other.nodes() {
        match nodes.get(&n) {
            Some(&prev) if prev != info => return Err(ItreeError::IncompatibleNode(n)),
            _ => {
                nodes.insert(n, info);
            }
        }
    }

    let (ty1, ty2) = (t1.ty(), t2.ty());
    let mut ty = ConditionalTreeType::new();
    let mut pair_of: HashMap<(Sym, Sym), Sym> = HashMap::new();

    for s1 in ty1.syms() {
        for s2 in ty2.syms() {
            let i1 = ty1.info(s1);
            let i2 = ty2.info(s2);
            let target = match (i1.target, i2.target) {
                (SymTarget::Lab(a), SymTarget::Lab(b)) if a == b => SymTarget::Lab(a),
                (SymTarget::Node(n), SymTarget::Node(m)) if n == m => SymTarget::Node(n),
                (SymTarget::Node(n), SymTarget::Lab(b)) => {
                    if t2.nodes().contains_key(&n) || t1.node_info(n).map(|i| i.label) != Some(b) {
                        continue;
                    }
                    SymTarget::Node(n)
                }
                (SymTarget::Lab(a), SymTarget::Node(m)) => {
                    if t1.nodes().contains_key(&m) || t2.node_info(m).map(|i| i.label) != Some(a) {
                        continue;
                    }
                    SymTarget::Node(m)
                }
                _ => continue,
            };
            let cond = i1.cond.intersect(&i2.cond);
            if cond.is_empty() {
                continue;
            }
            let name = format!("{}&{}", truncate(&i1.name), truncate(&i2.name));
            let p = ty.add_symbol(name, target, cond);
            pair_of.insert((s1, s2), p);
        }
    }

    // The pair table is a HashMap, so never iterate it directly: sort
    // the keys once and drive every pass off that.
    let mut keys: Vec<(Sym, Sym)> = Vec::with_capacity(pair_of.len());
    keys.extend(pair_of.keys().copied());
    keys.sort_unstable();

    for &(s1, s2) in &keys {
        if ty1.roots().contains(&s1) && ty2.roots().contains(&s2) {
            ty.add_root(pair_of[&(s1, s2)]);
        }
    }

    let mus: Vec<Disjunction> = iixml_par::par_map_ref(&keys, INTERSECT_GRAIN, |&(s1, s2)| {
        let mut atoms: Vec<SAtom> = Vec::new();
        for a1 in ty1.mu(s1).atoms() {
            for a2 in ty2.mu(s2).atoms() {
                join_atoms_reference(a1, a2, &pair_of, &mut atoms);
            }
        }
        atoms.sort_by(|x, y| x.entries().iter().cmp(y.entries().iter()));
        atoms.dedup();
        Disjunction(atoms)
    });
    for (&(s1, s2), mu) in keys.iter().zip(mus) {
        ty.set_mu(pair_of[&(s1, s2)], mu);
    }

    IncompleteTree::new(nodes, ty)
}

fn truncate(s: &str) -> &str {
    let max = 40;
    if s.len() <= max {
        s
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        &s[..end]
    }
}

/// One constrained entry of a ⋊⋉ join: bounded (`1`/`?`) or mandatory
/// (`1`/`+`) on one side, constraining the total count across all pairs
/// containing that entry.
#[derive(Clone, Copy)]
struct Constraint {
    side1: bool,
    idx: usize,
    mandatory: bool,
    bounded: bool,
}

/// An entry pair of the ⋊⋉ join, viewed by its two entry indices. The
/// shipping path carries the cached product symbol alongside; the
/// preserved reference path carries the bare indices.
trait PairIj: Copy {
    fn ij(self) -> (usize, usize);
}

impl PairIj for (usize, usize) {
    fn ij(self) -> (usize, usize) {
        self
    }
}

impl PairIj for (usize, usize, Sym) {
    fn ij(self) -> (usize, usize) {
        (self.0, self.1)
    }
}

/// choice[c] = Some(pair index) designated for constraint c, or None
/// (allowed only for non-mandatory constraints).
fn join_recurse<P: PairIj>(
    cs: &[Constraint],
    k: usize,
    pairs: &[P],
    choice: &mut Vec<Option<usize>>,
    emit: &mut dyn FnMut(&[Option<usize>]),
) {
    if k == cs.len() {
        emit(choice);
        return;
    }
    let c = cs[k];
    let mut any = false;
    for (pi, p) in pairs.iter().enumerate() {
        let (i, j) = p.ij();
        let on_entry = if c.side1 { i == c.idx } else { j == c.idx };
        if on_entry {
            any = true;
            choice.push(Some(pi));
            join_recurse(cs, k + 1, pairs, choice, emit);
            choice.pop();
        }
    }
    if !c.mandatory || !any {
        // A bounded-but-optional entry may host no child at all; a
        // mandatory entry with no partner makes the join empty (we
        // simply emit nothing down this branch).
        if !c.mandatory {
            choice.push(None);
            join_recurse(cs, k + 1, pairs, choice, emit);
            choice.pop();
        }
    }
}

/// Joins two multiplicity atoms (the `⋊⋉` of Lemma 3.3), appending the
/// resulting atoms (possibly several, possibly none) to `out`.
///
/// A child of the combined node must be typeable on both sides, so the
/// joined atom ranges over compatible entry pairs. Entries that are
/// bounded (`1`/`?`) or mandatory (`1`/`+`) on one side constrain the
/// *total* count across all pairs containing that entry, which a single
/// atom cannot express when an entry has several compatible partners; we
/// therefore expand disjunctively over the choice of partner. On
/// unambiguous trees every choice set is a singleton and the expansion
/// degenerates to the paper's single joined atom.
///
/// All working buffers live in `scratch` so a worker joining thousands
/// of atom pairs allocates each of them once; every use starts from
/// `clear()`, so reuse is invisible in the output.
fn join_atoms(
    a1: &SAtom,
    a2: &SAtom,
    pair_of: &PairTable,
    scratch: &mut JoinScratch,
    out: &mut Vec<SAtom>,
) {
    let JoinScratch {
        pairs,
        constraints,
        included,
        designated,
        choice,
    } = scratch;
    // All compatible pairs, with partner lists per side entry. The
    // product symbol is probed once here and carried along, so the emit
    // pass never touches the table again.
    pairs.clear();
    for (i, &(c1, _)) in a1.entries().iter().enumerate() {
        for (j, &(c2, _)) in a2.entries().iter().enumerate() {
            if let Some(p) = pair_of.get(c1, c2) {
                pairs.push((i, j, p));
            }
        }
    }
    // Constrained entries: bounded or mandatory on either side.
    constraints.clear();
    for (i, &(_, m)) in a1.entries().iter().enumerate() {
        if m.mandatory() || !m.repeatable() {
            constraints.push(Constraint {
                side1: true,
                idx: i,
                mandatory: m.mandatory(),
                bounded: !m.repeatable(),
            });
        }
    }
    for (j, &(_, m)) in a2.entries().iter().enumerate() {
        if m.mandatory() || !m.repeatable() {
            constraints.push(Constraint {
                side1: false,
                idx: j,
                mandatory: m.mandatory(),
                bounded: !m.repeatable(),
            });
        }
    }

    let a1e = a1.entries();
    let a2e = a2.entries();
    let before = out.len();
    // Reborrow immutably so the emit closure can capture the flag
    // buffers mutably alongside them.
    let pairs: &[(usize, usize, Sym)] = pairs;
    let constraints: &[Constraint] = constraints;
    let mut emit = |choice: &[Option<usize>]| {
        // Build the atom for this combination.
        // included[p]: pair participates; designated[p]: lower bound 1.
        included.clear();
        included.resize(pairs.len(), true);
        designated.clear();
        designated.resize(pairs.len(), false);
        for (c, &ch) in constraints.iter().zip(choice) {
            if c.bounded {
                // Only the chosen partner (if any) survives for this
                // entry.
                for (pi, &(i, j, _)) in pairs.iter().enumerate() {
                    let on_entry = if c.side1 { i == c.idx } else { j == c.idx };
                    if on_entry && Some(pi) != ch {
                        included[pi] = false;
                    }
                }
            }
            if c.mandatory {
                if let Some(pi) = ch {
                    designated[pi] = true;
                }
            }
        }
        // Consistency: every designated pair must still be included
        // (a partner excluded by the other side's bounded choice is a
        // contradiction).
        for pi in 0..pairs.len() {
            if designated[pi] && !included[pi] {
                return;
            }
        }
        let mut entries: Vec<(Sym, Mult)> = Vec::with_capacity(pairs.len());
        for (pi, &(i, j, p)) in pairs.iter().enumerate() {
            if !included[pi] {
                continue;
            }
            let (_, m1) = a1e[i];
            let (_, m2) = a2e[j];
            let (_, bounded) = meet_bounds(m1, m2);
            let mandatory = designated[pi];
            entries.push((p, mult_from(mandatory, bounded)));
        }
        out.push(SAtom::new(entries));
    };
    choice.clear();
    join_recurse(constraints, 0, pairs, choice, &mut emit);
    let fanout = (out.len() - before) as u64;
    OBS_JOIN_FANOUT.observe(fanout);
    if fanout > 1 {
        OBS_EXPANSIONS.incr();
    }
}

/// The pre-scratch ⋊⋉ join, preserved verbatim for
/// [`intersect_reference`]: hash-table probes and fresh buffer
/// allocations per emitted combination.
fn join_atoms_reference(
    a1: &SAtom,
    a2: &SAtom,
    pair_of: &HashMap<(Sym, Sym), Sym>,
    out: &mut Vec<SAtom>,
) {
    let mut pairs: Vec<(usize, usize)> = Vec::new(); // (idx in a1, idx in a2)
    for (i, &(c1, _)) in a1.entries().iter().enumerate() {
        for (j, &(c2, _)) in a2.entries().iter().enumerate() {
            if pair_of.contains_key(&(c1, c2)) {
                pairs.push((i, j));
            }
        }
    }
    let mut constraints: Vec<Constraint> = Vec::new();
    for (i, &(_, m)) in a1.entries().iter().enumerate() {
        if m.mandatory() || !m.repeatable() {
            constraints.push(Constraint {
                side1: true,
                idx: i,
                mandatory: m.mandatory(),
                bounded: !m.repeatable(),
            });
        }
    }
    for (j, &(_, m)) in a2.entries().iter().enumerate() {
        if m.mandatory() || !m.repeatable() {
            constraints.push(Constraint {
                side1: false,
                idx: j,
                mandatory: m.mandatory(),
                bounded: !m.repeatable(),
            });
        }
    }

    let a1e = a1.entries();
    let a2e = a2.entries();
    let before = out.len();
    let mut emit = |choice: &[Option<usize>]| {
        let mut included = vec![true; pairs.len()];
        let mut designated = vec![false; pairs.len()];
        for (c, &ch) in constraints.iter().zip(choice) {
            if c.bounded {
                for (pi, &(i, j)) in pairs.iter().enumerate() {
                    let on_entry = if c.side1 { i == c.idx } else { j == c.idx };
                    if on_entry && Some(pi) != ch {
                        included[pi] = false;
                    }
                }
            }
            if c.mandatory {
                if let Some(pi) = ch {
                    designated[pi] = true;
                }
            }
        }
        for pi in 0..pairs.len() {
            if designated[pi] && !included[pi] {
                return;
            }
        }
        let mut entries: Vec<(Sym, Mult)> = Vec::with_capacity(pairs.len());
        for (pi, &(i, j)) in pairs.iter().enumerate() {
            if !included[pi] {
                continue;
            }
            let (c1, m1) = a1e[i];
            let (c2, m2) = a2e[j];
            let (_, bounded) = meet_bounds(m1, m2);
            let mandatory = designated[pi];
            entries.push((pair_of[&(c1, c2)], mult_from(mandatory, bounded)));
        }
        out.push(SAtom::new(entries));
    };
    let mut choice = Vec::new();
    join_recurse(&constraints, 0, &pairs, &mut choice, &mut emit);
    let fanout = (out.len() - before) as u64;
    OBS_JOIN_FANOUT.observe(fanout);
    if fanout > 1 {
        OBS_EXPANSIONS.incr();
    }
}

/// Maintains the incomplete tree of a Refine chain: start from the
/// zero-knowledge universal tree and refine with successive query-answer
/// pairs (Theorem 3.4), optionally folding in the source's tree type
/// (Theorem 3.5, see [`crate::type_intersect`]).
#[derive(Clone, Debug)]
pub struct Refiner {
    current: IncompleteTree,
    steps: usize,
}

impl Refiner {
    /// Starts a chain knowing nothing: `rep` = all trees over `alpha`.
    ///
    /// The alphabet must already contain every label the *source
    /// document* can use (labels interned later — e.g. by queries probing
    /// names absent from the source — are harmless: the chain correctly
    /// records that no such nodes exist).
    pub fn new(alpha: &Alphabet) -> Refiner {
        let labels: Vec<Label> = alpha.labels().collect();
        let names: Vec<&str> = labels.iter().map(|&l| alpha.name(l)).collect();
        Refiner {
            current: IncompleteTree::universal(&labels, &names),
            steps: 0,
        }
    }

    /// Starts a chain from an existing incomplete tree.
    pub fn from_tree(t: IncompleteTree) -> Refiner {
        Refiner {
            current: t,
            steps: 0,
        }
    }

    /// The current incomplete tree.
    pub fn current(&self) -> &IncompleteTree {
        &self.current
    }

    /// Number of refinement steps performed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// One step of Algorithm Refine:
    /// `T ← minimize(trim(T ∩ T_{q,A}))`. Minimization (bisimulation
    /// merging, see [`crate::minimize`]) is `rep`-preserving and keeps
    /// benign chains — in particular those aided by Proposition 3.13's
    /// auxiliary queries — polynomial.
    pub fn refine(
        &mut self,
        alpha: &Alphabet,
        q: &PsQuery,
        ans: &Answer,
    ) -> Result<(), ItreeError> {
        let tqa = query_answer_tree(q, ans, alpha)?;
        let combined = {
            let _span = OBS_INTERSECT_NS.time();
            intersect(&self.current, &tqa)?
        };
        let trimmed = {
            let _span = OBS_TRIM_NS.time();
            combined.trim()
        };
        self.current = {
            let _span = OBS_MINIMIZE_NS.time();
            trimmed.minimize()
        };
        self.steps += 1;
        OBS_STEPS.incr();
        OBS_STEP_SIZE.observe(self.current.size() as u64);
        Ok(())
    }

    /// The data tree `T_d` accumulated so far (the known prefix of the
    /// source document).
    pub fn data_tree(&self) -> Option<DataTree> {
        self.current.data_tree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::NidGen;
    use iixml_values::{Cond, Rat};

    /// A tiny source: root(=0) with children a(=1), a(=5), b(=2).
    fn source(alpha: &mut Alphabet) -> DataTree {
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        t.add_child(t.root(), Nid(1), a, Rat::from(1)).unwrap();
        t.add_child(t.root(), Nid(2), a, Rat::from(5)).unwrap();
        t.add_child(t.root(), Nid(3), b, Rat::from(2)).unwrap();
        t
    }

    fn q_a_lt(alpha: &mut Alphabet, bound: i64) -> PsQuery {
        let mut bld = PsQueryBuilder::new(alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "a", Cond::lt(Rat::from(bound))).unwrap();
        bld.build()
    }

    #[test]
    fn tqa_inverse_image_contains_source() {
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q = q_a_lt(&mut alpha, 3);
        let ans = q.eval(&t);
        assert_eq!(ans.len(), 2); // root + a(=1)
        let tqa = query_answer_tree(&q, &ans, &alpha).unwrap();
        assert!(tqa.well_formed().is_ok());
        assert!(tqa.contains(&t), "the source itself must be in q^-1(A)");
    }

    #[test]
    fn tqa_rejects_trees_with_different_answers() {
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q = q_a_lt(&mut alpha, 3);
        let ans = q.eval(&t);
        let tqa = query_answer_tree(&q, &ans, &alpha).unwrap();

        // A tree with an extra a(=2) child would have answered with an
        // extra node: not in q^-1(A).
        let mut t2 = t.clone();
        t2.add_child(t2.root(), Nid(9), alpha.get("a").unwrap(), Rat::from(2))
            .unwrap();
        assert!(!tqa.contains(&t2));

        // A tree missing node 1 answers with fewer nodes.
        let mut t3 = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        t3.add_child(t3.root(), Nid(2), alpha.get("a").unwrap(), Rat::from(5))
            .unwrap();
        assert!(!tqa.contains(&t3));

        // Changing a non-answer node's value (a=5 -> a=7) keeps the
        // answer identical: still in q^-1(A).
        let mut t4 = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        t4.add_child(t4.root(), Nid(1), alpha.get("a").unwrap(), Rat::from(1))
            .unwrap();
        t4.add_child(t4.root(), Nid(12), alpha.get("a").unwrap(), Rat::from(7))
            .unwrap();
        assert!(tqa.contains(&t4));
    }

    #[test]
    fn tqa_empty_answer() {
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q = q_a_lt(&mut alpha, 0); // no a < 0
        let ans = q.eval(&t);
        assert!(ans.is_empty());
        let tqa = query_answer_tree(&q, &ans, &alpha).unwrap();
        assert!(tqa.contains(&t));
        // A tree with a(= -1) would have answered nonempty.
        let mut bad = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        bad.add_child(bad.root(), Nid(5), alpha.get("a").unwrap(), Rat::from(-1))
            .unwrap();
        assert!(!tqa.contains(&bad));
        // A tree with a different root label answers empty too.
        let other = DataTree::new(Nid(0), alpha.get("b").unwrap(), Rat::ZERO);
        assert!(tqa.contains(&other));
    }

    #[test]
    fn refine_chain_narrows_rep() {
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q1 = q_a_lt(&mut alpha, 3);
        let q2 = {
            let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = bld.root();
            bld.child(root, "b", Cond::True).unwrap();
            bld.build()
        };
        let mut refiner = Refiner::new(&alpha);
        assert!(refiner.current().contains(&t));

        let a1 = q1.eval(&t);
        refiner.refine(&alpha, &q1, &a1).unwrap();
        assert!(refiner.current().contains(&t));
        assert!(refiner.current().is_unambiguous());

        let a2 = q2.eval(&t);
        refiner.refine(&alpha, &q2, &a2).unwrap();
        let cur = refiner.current();
        assert!(cur.contains(&t), "source always remains represented");
        assert!(!cur.is_empty());
        assert_eq!(refiner.steps(), 2);

        // The accumulated data tree holds the union of both answers:
        // root, a(=1), b(=2).
        let td = refiner.data_tree().unwrap();
        assert_eq!(td.len(), 3);
        assert!(td.by_nid(Nid(1)).is_some());
        assert!(td.by_nid(Nid(3)).is_some());

        // Trees answering differently to either query are excluded.
        let mut bad = t.clone();
        bad.add_child(bad.root(), Nid(9), alpha.get("b").unwrap(), Rat::from(4))
            .unwrap();
        assert!(!cur.contains(&bad), "extra b changes q2's answer");
        let mut ok = t.clone();
        ok.add_child(ok.root(), Nid(9), alpha.get("a").unwrap(), Rat::from(10))
            .unwrap();
        assert!(cur.contains(&ok), "extra a >= 3 changes neither answer");
    }

    #[test]
    fn refine_with_incompatible_nodes_errors() {
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q = q_a_lt(&mut alpha, 3);
        let ans = q.eval(&t);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q, &ans).unwrap();
        // Fake a conflicting answer: node 1 now claims value 2.
        let mut fake_tree = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        fake_tree
            .add_child(
                fake_tree.root(),
                Nid(1),
                alpha.get("a").unwrap(),
                Rat::from(2),
            )
            .unwrap();
        let fake = q.eval(&fake_tree);
        assert!(matches!(
            refiner.refine(&alpha, &q, &fake),
            Err(ItreeError::IncompatibleNode(Nid(1)))
        ));
    }

    #[test]
    fn intersection_semantics_on_witnesses() {
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q1 = q_a_lt(&mut alpha, 3);
        let q2 = q_a_lt(&mut alpha, 10);
        let t1 = query_answer_tree(&q1, &q1.eval(&t), &alpha).unwrap();
        let t2 = query_answer_tree(&q2, &q2.eval(&t), &alpha).unwrap();
        let both = intersect(&t1, &t2).unwrap().trim();
        assert!(both.contains(&t));
        // Witnesses of the intersection lie in both components.
        let w = both.witness(&mut NidGen::starting_at(100)).unwrap();
        assert!(t1.contains(&w));
        assert!(t2.contains(&w));
    }

    #[test]
    fn query_with_label_unknown_to_the_chain() {
        // A query probing a label interned after the chain started: the
        // empty answer is recorded consistently and the source stays
        // represented.
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let mut refiner = Refiner::new(&alpha);
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let broot = bld.root();
        bld.child(broot, "zzz_new_label", Cond::True).unwrap();
        let q = bld.build();
        let ans = q.eval(&t);
        assert!(ans.is_empty());
        refiner.refine(&alpha, &q, &ans).unwrap();
        assert!(refiner.current().contains(&t));
        // A hypothetical source WITH that label would have answered
        // nonempty: rightly excluded.
        let mut other = t.clone();
        let zzz = alpha.get("zzz_new_label").unwrap();
        other
            .add_child(other.root(), Nid(99), zzz, Rat::ZERO)
            .unwrap();
        assert!(!refiner.current().contains(&other));
    }

    #[test]
    fn table_driven_intersect_matches_reference() {
        // The dense pair table + scratch-arena join must produce a
        // structurally identical tree to the preserved legacy path,
        // symbol ids and µ atom order included.
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q1 = q_a_lt(&mut alpha, 3);
        let q2 = q_a_lt(&mut alpha, 10);
        let t1 = query_answer_tree(&q1, &q1.eval(&t), &alpha).unwrap();
        let t2 = query_answer_tree(&q2, &q2.eval(&t), &alpha).unwrap();
        let fast = intersect(&t1, &t2).unwrap();
        let slow = intersect_reference(&t1, &t2).unwrap();
        assert_eq!(format!("{:?}", fast.ty()), format!("{:?}", slow.ty()));
        assert_eq!(fast.nodes(), slow.nodes());
    }

    #[test]
    fn refined_tree_answers_query_consistently() {
        // Every witness of the refined tree must produce the recorded
        // answer when the query is re-evaluated (rep = q^-1(A) ∩ ...).
        let mut alpha = Alphabet::new();
        let t = source(&mut alpha);
        let q = q_a_lt(&mut alpha, 3);
        let ans = q.eval(&t);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q, &ans).unwrap();
        let w = refiner
            .current()
            .witness(&mut NidGen::starting_at(500))
            .unwrap();
        let re = q.eval(&w);
        assert!(
            re.tree
                .as_ref()
                .unwrap()
                .same_tree(ans.tree.as_ref().unwrap()),
            "witness answers the query exactly as recorded"
        );
    }
}
