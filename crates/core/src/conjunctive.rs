//! Conjunctive incomplete trees (Section 3.2, Theorems 3.8 and 3.10).
//!
//! Algorithm Refine's disjunctions of multiplicity atoms can grow
//! exponentially in the query-answer sequence (Example 3.2). The paper's
//! fix is to allow *conjunctions* of disjunctions of multiplicity atoms:
//! Refine⁺ then simply conjoins the new `T_{q,A}` constraint, keeping the
//! representation linear in the sequence (Corollary 3.9) — at the price
//! of NP-complete emptiness (Theorem 3.10).
//!
//! Representation choice (documented in DESIGN.md): a conjunctive
//! incomplete tree is stored as a shared data-node part plus a **vector
//! of incomplete-tree layers** with semantics `rep = ⋂ layers`. Each
//! Refine⁺ step appends one layer — literally "taking the conjunction".
//! This is equivalent to the paper's single-tree CNF for reachable trees
//! and keeps every operation syntax-directed:
//!
//! * [`ConjunctiveTree::is_empty`] implements the NP algorithm of
//!   Theorem 3.10 — a backtracking search that folds layers together via
//!   the Lemma 3.3 product, pruning as soon as a partial product is
//!   empty;
//! * [`ConjunctiveTree::to_incomplete_tree`] materializes the full
//!   product (worst-case exponential — this is the DNF expansion the
//!   paper describes), for comparison experiments;
//! * [`ConjunctiveTree::contains`] checks membership in every layer
//!   (conjunction of PTIME checks, so PTIME overall).

use crate::itree::{IncompleteTree, ItreeError};
use crate::refine::{intersect, query_answer_tree};
use iixml_query::{Answer, PsQuery};
use iixml_tree::{Alphabet, DataTree, Label};

/// A conjunctive incomplete tree: the intersection of its layers.
#[derive(Clone, Debug)]
pub struct ConjunctiveTree {
    layers: Vec<IncompleteTree>,
}

impl ConjunctiveTree {
    /// Starts with the zero-knowledge universal layer.
    pub fn new(alpha: &Alphabet) -> ConjunctiveTree {
        let labels: Vec<Label> = alpha.labels().collect();
        let names: Vec<&str> = labels.iter().map(|&l| alpha.name(l)).collect();
        ConjunctiveTree {
            layers: vec![IncompleteTree::universal(&labels, &names)],
        }
    }

    /// Wraps existing layers (semantics: their intersection).
    pub fn from_layers(layers: Vec<IncompleteTree>) -> ConjunctiveTree {
        assert!(!layers.is_empty(), "a conjunctive tree needs >= 1 layer");
        ConjunctiveTree { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[IncompleteTree] {
        &self.layers
    }

    /// Algorithm Refine⁺ (Theorem 3.8): conjoin `T_{q,A}`. The size grows
    /// by `O((|q| + |A|)·|Σ|)` per step — polynomial in the whole
    /// sequence (Corollary 3.9).
    ///
    /// Checks node compatibility against all existing layers, mirroring
    /// the compatibility precondition of Lemma 3.3.
    pub fn refine(
        &mut self,
        alpha: &Alphabet,
        q: &PsQuery,
        ans: &Answer,
    ) -> Result<(), ItreeError> {
        let layer = query_answer_tree(q, ans, alpha)?;
        for prev in &self.layers {
            for (&n, info) in layer.nodes() {
                if let Some(pi) = prev.node_info(n) {
                    if pi != *info {
                        return Err(ItreeError::IncompatibleNode(n));
                    }
                }
            }
        }
        self.layers.push(layer);
        Ok(())
    }

    /// Total representation size (sum of layer sizes).
    pub fn size(&self) -> usize {
        self.layers.iter().map(IncompleteTree::size).sum()
    }

    /// Membership: a tree is represented iff every layer represents it
    /// (PTIME — membership does not pay the NP price, only emptiness and
    /// its relatives do).
    pub fn contains(&self, t: &DataTree) -> bool {
        self.layers.iter().all(|l| l.contains(t))
    }

    /// Emptiness of `rep` — NP-complete (Theorem 3.10).
    ///
    /// Strategy: fold the layers left-to-right with the Lemma 3.3
    /// product, trimming after each step and stopping early when the
    /// partial product is already empty. The paper's
    /// nondeterministic disjunct choice π is realized implicitly: the
    /// product enumerates all disjunct combinations, which backtracking
    /// on emptiness prunes. Worst-case exponential (as it must be unless
    /// P = NP), linear when the layers chain consistently.
    pub fn is_empty(&self) -> bool {
        let mut acc = self.layers[0].clone();
        if acc.is_empty() {
            return true;
        }
        for layer in &self.layers[1..] {
            acc = match intersect(&acc, layer) {
                Ok(t) => t.trim(),
                Err(_) => return true, // incompatible shared node
            };
            if acc.is_empty() {
                return true;
            }
        }
        false
    }

    /// Materializes the explicit product of all layers — the exponential
    /// expansion Algorithm Refine would have built (Example 3.2). Returns
    /// an error on incompatible shared nodes.
    pub fn to_incomplete_tree(&self) -> Result<IncompleteTree, ItreeError> {
        let mut acc = self.layers[0].clone();
        for layer in &self.layers[1..] {
            acc = intersect(&acc, layer)?.trim();
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{DataTree, Nid};
    use iixml_values::{Cond, Rat};

    /// The Example 3.2 family: queries root{a=i, b=i} with empty
    /// answers.
    fn example_3_2_query(alpha: &mut Alphabet, i: i64) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::eq(Rat::from(i))).unwrap();
        b.child(root, "b", Cond::eq(Rat::from(i))).unwrap();
        b.build()
    }

    fn alphabet() -> Alphabet {
        Alphabet::from_names(["root", "a", "b"])
    }

    #[test]
    fn refine_plus_grows_linearly() {
        let mut alpha = alphabet();
        let mut conj = ConjunctiveTree::new(&alpha);
        let mut sizes = Vec::new();
        for i in 1..=6 {
            let q = example_3_2_query(&mut alpha, i);
            conj.refine(&alpha, &q, &Answer::empty()).unwrap();
            sizes.push(conj.size());
        }
        // Linear growth: constant per-step increments.
        let d1 = sizes[1] - sizes[0];
        for w in sizes.windows(2) {
            assert_eq!(w[1] - w[0], d1, "per-step growth is constant");
        }
    }

    #[test]
    fn conjunctive_semantics_matches_membership() {
        let mut alpha = alphabet();
        let mut conj = ConjunctiveTree::new(&alpha);
        for i in 1..=3 {
            let q = example_3_2_query(&mut alpha, i);
            conj.refine(&alpha, &q, &Answer::empty()).unwrap();
        }
        let (r, a, b) = (
            alpha.get("root").unwrap(),
            alpha.get("a").unwrap(),
            alpha.get("b").unwrap(),
        );
        // root with a=1, b=2: q1 would answer empty? q1 asks a=1 AND
        // b=1; b=1 missing -> empty. q2: a=2 missing -> empty. OK.
        let mut ok = DataTree::new(Nid(0), r, Rat::ZERO);
        ok.add_child(ok.root(), Nid(1), a, Rat::from(1)).unwrap();
        ok.add_child(ok.root(), Nid(2), b, Rat::from(2)).unwrap();
        assert!(conj.contains(&ok));
        // root with a=2, b=2: q2 would answer nonempty -> excluded.
        let mut bad = DataTree::new(Nid(0), r, Rat::ZERO);
        bad.add_child(bad.root(), Nid(1), a, Rat::from(2)).unwrap();
        bad.add_child(bad.root(), Nid(2), b, Rat::from(2)).unwrap();
        assert!(!conj.contains(&bad));
        assert!(!conj.is_empty());
    }

    #[test]
    fn product_expansion_agrees_with_layers() {
        let mut alpha = alphabet();
        let mut conj = ConjunctiveTree::new(&alpha);
        for i in 1..=3 {
            let q = example_3_2_query(&mut alpha, i);
            conj.refine(&alpha, &q, &Answer::empty()).unwrap();
        }
        let expanded = conj.to_incomplete_tree().unwrap();
        let (r, a, b) = (
            alpha.get("root").unwrap(),
            alpha.get("a").unwrap(),
            alpha.get("b").unwrap(),
        );
        // Check agreement on a batch of small trees.
        for av in 0..5i64 {
            for bv in 0..5i64 {
                let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
                t.add_child(t.root(), Nid(1), a, Rat::from(av)).unwrap();
                t.add_child(t.root(), Nid(2), b, Rat::from(bv)).unwrap();
                assert_eq!(
                    conj.contains(&t),
                    expanded.contains(&t),
                    "disagreement at a={av}, b={bv}"
                );
            }
        }
    }

    #[test]
    fn expansion_blows_up_while_layers_stay_small() {
        let mut alpha = alphabet();
        let n = 5;
        let mut conj = ConjunctiveTree::new(&alpha);
        for i in 1..=n {
            let q = example_3_2_query(&mut alpha, i);
            conj.refine(&alpha, &q, &Answer::empty()).unwrap();
        }
        let expanded = conj.to_incomplete_tree().unwrap();
        // The expanded root must distinguish ~2^n combinations of
        // which inequality holds via a / via b; the conjunctive
        // representation stays linear.
        assert!(
            expanded.size() > conj.size(),
            "expanded {} vs conjunctive {}",
            expanded.size(),
            conj.size()
        );
        assert!(!conj.is_empty());
    }

    #[test]
    fn emptiness_detected() {
        let mut alpha = alphabet();
        let mut conj = ConjunctiveTree::new(&alpha);
        // First: the root (labeled root, value anything) exists and the
        // query root[=1] answered *nonempty* (root value is 1)...
        let q_root_is_1 = PsQueryBuilder::new(&mut alpha, "root", Cond::eq(Rat::ONE)).build();
        let mut world = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ONE);
        world
            .add_child(world.root(), Nid(1), alpha.get("a").unwrap(), Rat::ZERO)
            .unwrap();
        let ans = q_root_is_1.eval(&world);
        assert!(!ans.is_empty());
        conj.refine(&alpha, &q_root_is_1, &ans).unwrap();
        assert!(!conj.is_empty());
        // ...then the query root[=1] answers empty: contradiction.
        conj.refine(&alpha, &q_root_is_1, &Answer::empty()).unwrap();
        assert!(conj.is_empty());
    }

    #[test]
    fn incompatible_nodes_rejected() {
        let mut alpha = alphabet();
        let mut conj = ConjunctiveTree::new(&alpha);
        let q = PsQueryBuilder::new(&mut alpha, "root", Cond::True).build();
        let w1 = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        let w2 = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ONE);
        conj.refine(&alpha, &q, &q.eval(&w1)).unwrap();
        assert!(matches!(
            conj.refine(&alpha, &q, &q.eval(&w2)),
            Err(ItreeError::IncompatibleNode(Nid(0)))
        ));
    }
}
