//! Intersection of an incomplete tree with a source tree type
//! (Theorem 3.5).
//!
//! Algorithm Refine alone tracks only the information derived from
//! query-answer pairs; the source's declared DTD (tree type) can be
//! folded in at any time: `rep(T′) = rep(T) ∩ rep(ρ)`.
//!
//! The construction follows the paper: the root set is restricted to
//! specializations of ρ's roots, and each multiplicity atom is either
//! eliminated (it contradicts ρ) or adjusted so that per-label occurrence
//! totals respect ρ's multiplicities. Where the paper appeals to the
//! uniqueness of the `b⋆` entry (unambiguity), we expand disjunctively
//! over which same-label entry hosts a `1`/`?`/`+` budget — reachable
//! incomplete trees have several ⋆-specializations per label (`τ̄`/`τ̂`),
//! and "exactly one b-child" then means "exactly one child typed by one
//! of them".

use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget};
use crate::itree::IncompleteTree;
use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_tree::{Label, Mult, TreeType};
use std::collections::BTreeMap;

/// Symbols per chunk when the per-symbol restriction fans out
/// (`IIXML_PAR_CHUNK` overrides).
const RESTRICT_CHUNK: usize = 32;

/// Symbol count at or below which the restriction runs inline on the
/// calling thread (`IIXML_PAR_CUTOFF` overrides).
const RESTRICT_CUTOFF: usize = 128;

/// Wall time of each [`restrict_to_type`] call.
static OBS_RESTRICT_NS: LazyHistogram = LazyHistogram::new(keys::CORE_TYPE_INTERSECT_RESTRICT_NS);
/// Alternatives produced per atom restriction (cartesian blowup gauge).
static OBS_ATOM_FANOUT: LazyHistogram = LazyHistogram::new(keys::CORE_TYPE_INTERSECT_ATOM_FANOUT);
/// Atoms eliminated as contradicting the type.
static OBS_CONTRADICTIONS: LazyCounter = LazyCounter::new(keys::CORE_TYPE_INTERSECT_CONTRADICTIONS);

/// The underlying element label of a symbol (through data nodes).
fn underlying(it: &IncompleteTree, s: Sym) -> Option<Label> {
    match it.ty().info(s).target {
        SymTarget::Lab(l) => Some(l),
        SymTarget::Node(n) => it.node_info(n).map(|i| i.label),
    }
}

/// Restricts an incomplete tree to the trees that also satisfy the given
/// tree type: `rep(result) = rep(it) ∩ rep(ty)` (Theorem 3.5).
pub fn restrict_to_type(it: &IncompleteTree, ty: &TreeType) -> IncompleteTree {
    let _span = OBS_RESTRICT_NS.time();
    let src = it.ty();
    let mut out = ConditionalTreeType::new();
    // Same symbol set (indices preserved); only roots and µ change.
    for s in src.syms() {
        let info = src.info(s);
        out.add_symbol(info.name.clone(), info.target, info.cond.clone());
    }
    // R′: specializations of ρ's roots.
    for &r in src.roots() {
        if underlying(it, r).is_some_and(|l| ty.roots().contains(&l)) {
            out.add_root(r);
        }
    }
    // Each symbol's restricted µ depends only on the frozen inputs, so
    // the per-symbol restriction fans out in chunks; the atom buffer is
    // per-worker scratch, cleared per symbol, so one worker restricting
    // a whole chunk allocates it once.
    let syms: Vec<Sym> = src.syms().collect();
    let mus: Vec<Disjunction> = iixml_par::par_map_chunks(
        &syms,
        RESTRICT_CHUNK,
        RESTRICT_CUTOFF,
        Vec::new,
        |atoms: &mut Vec<SAtom>, &s, _| {
            let Some(label) = underlying(it, s) else {
                return Disjunction(vec![]);
            };
            let rho = ty.atom(label);
            atoms.clear();
            for atom in src.mu(s).atoms() {
                restrict_atom(it, atom, &rho, atoms);
            }
            atoms.sort_by(|x, y| x.entries().iter().cmp(y.entries().iter()));
            atoms.dedup();
            Disjunction(atoms.clone())
        },
    );
    for (&s, mu) in syms.iter().zip(mus) {
        out.set_mu(s, mu);
    }
    // Infallible: `out` targets the same node set as `it`, whose own
    // well-formedness was checked when `it` was constructed.
    IncompleteTree::new(it.nodes().clone(), out)
        .expect("symbol set unchanged")
        .trim()
}

/// Adjusts one atom to the per-label budgets of `rho`, appending the
/// resulting alternatives to `out` (none when the atom is contradictory).
fn restrict_atom(
    it: &IncompleteTree,
    atom: &SAtom,
    rho: &iixml_tree::MultAtom,
    out: &mut Vec<SAtom>,
) {
    // Group entry indices by underlying label.
    let entries = atom.entries();
    let mut groups: BTreeMap<Label, Vec<usize>> = BTreeMap::new();
    for (i, &(c, _)) in entries.iter().enumerate() {
        match underlying(it, c) {
            Some(l) => groups.entry(l).or_default().push(i),
            None => {
                // Dangling node symbol: contradictory.
                OBS_CONTRADICTIONS.incr();
                return;
            }
        }
    }
    // Labels mandated by rho but absent from the atom: contradiction.
    for &(l, m) in rho.entries() {
        if m.mandatory() && !groups.contains_key(&l) {
            OBS_CONTRADICTIONS.incr();
            return;
        }
    }
    // Each label contributes a set of alternative "patches": per entry
    // index, the multiplicity to use (absent = entry dropped).
    // Alternatives across labels combine by cartesian product.
    type Patch = Vec<(usize, Mult)>;
    let mut per_label: Vec<Vec<Patch>> = Vec::new();

    for (&label, idxs) in &groups {
        let budget = rho.mult(label);
        let mands: Vec<usize> = idxs
            .iter()
            .copied()
            .filter(|&i| entries[i].1.mandatory())
            .collect();
        let alternatives: Vec<Patch> = match budget {
            None => {
                // Label forbidden by rho: mandatory entries contradict;
                // optional entries are dropped.
                if !mands.is_empty() {
                    OBS_CONTRADICTIONS.incr();
                    return;
                }
                vec![Vec::new()]
            }
            Some(Mult::Star) => {
                vec![idxs.iter().map(|&i| (i, entries[i].1)).collect()]
            }
            Some(Mult::Plus) => {
                if !mands.is_empty() {
                    // Presence already guaranteed.
                    vec![idxs.iter().map(|&i| (i, entries[i].1)).collect()]
                } else {
                    // Designate one entry to carry the >=1 budget.
                    idxs.iter()
                        .map(|&host| {
                            idxs.iter()
                                .map(|&i| {
                                    let m = entries[i].1;
                                    let m = if i == host {
                                        match m {
                                            Mult::Star => Mult::Plus,
                                            Mult::Opt => Mult::One,
                                            other => other,
                                        }
                                    } else {
                                        m
                                    };
                                    (i, m)
                                })
                                .collect()
                        })
                        .collect()
                }
            }
            Some(bounded @ (Mult::One | Mult::Opt)) => {
                if mands.len() >= 2 {
                    // Two guaranteed children exceed the budget.
                    OBS_CONTRADICTIONS.incr();
                    return;
                }
                if mands.len() == 1 {
                    // The mandatory entry is the single child; cap it at
                    // exactly one and drop the other same-label entries.
                    vec![vec![(mands[0], Mult::One)]]
                } else {
                    // Choose which entry hosts the (at most / exactly)
                    // one child; `?` keeps the zero-children case via an
                    // extra empty alternative.
                    let target = if bounded == Mult::One {
                        Mult::One
                    } else {
                        Mult::Opt
                    };
                    let mut alts: Vec<Patch> =
                        idxs.iter().map(|&host| vec![(host, target)]).collect();
                    if bounded == Mult::One && alts.is_empty() {
                        OBS_CONTRADICTIONS.incr();
                        return;
                    }
                    if bounded == Mult::Opt {
                        alts.push(Vec::new()); // no child of this label
                    }
                    alts
                }
            }
        };
        per_label.push(alternatives);
    }

    // Cartesian product of the per-label alternatives.
    let mut combos: Vec<Patch> = vec![Vec::new()];
    for alts in &per_label {
        let mut next = Vec::with_capacity(combos.len() * alts.len());
        for combo in &combos {
            for alt in alts {
                let mut c = combo.clone();
                c.extend(alt.iter().copied());
                next.push(c);
            }
        }
        combos = next;
    }
    OBS_ATOM_FANOUT.observe(combos.len() as u64);
    for combo in combos {
        let new_entries: Vec<(Sym, Mult)> =
            combo.into_iter().map(|(i, m)| (entries[i].0, m)).collect();
        out.push(SAtom::new(new_entries));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::{query_answer_tree, Refiner};
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{Alphabet, DataTree, Nid, NidGen, TreeTypeBuilder};
    use iixml_values::{Cond, Rat};

    fn setup() -> (Alphabet, TreeType, DataTree) {
        let mut alpha = Alphabet::new();
        let ty = TreeTypeBuilder::new(&mut alpha)
            .root("root")
            .rule("root", &[("a", Mult::Plus), ("b", Mult::Opt)])
            .build()
            .unwrap();
        let r = alpha.get("root").unwrap();
        let a = alpha.get("a").unwrap();
        let b = alpha.get("b").unwrap();
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        t.add_child(t.root(), Nid(1), a, Rat::from(1)).unwrap();
        t.add_child(t.root(), Nid(2), a, Rat::from(5)).unwrap();
        t.add_child(t.root(), Nid(3), b, Rat::from(2)).unwrap();
        (alpha, ty, t)
    }

    #[test]
    fn restriction_keeps_conforming_trees() {
        let (mut alpha, ty, t) = setup();
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "a", Cond::lt(Rat::from(3))).unwrap();
        let q = bld.build();
        let ans = q.eval(&t);
        let tqa = query_answer_tree(&q, &ans, &alpha).unwrap();
        let restricted = restrict_to_type(&tqa, &ty);
        assert!(ty.accepts(&t));
        assert!(tqa.contains(&t));
        assert!(restricted.contains(&t));
        assert!(!restricted.is_empty());
    }

    #[test]
    fn restriction_drops_nonconforming_trees() {
        let (mut alpha, ty, t) = setup();
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "a", Cond::lt(Rat::from(3))).unwrap();
        let q = bld.build();
        let ans = q.eval(&t);
        let tqa = query_answer_tree(&q, &ans, &alpha).unwrap();
        let restricted = restrict_to_type(&tqa, &ty);

        // Two b children violate b?.
        let mut bad = t.clone();
        bad.add_child(bad.root(), Nid(9), alpha.get("b").unwrap(), Rat::from(9))
            .unwrap();
        assert!(tqa.contains(&bad), "q^-1(A) alone allows it");
        assert!(!restricted.contains(&bad), "the type forbids it");

        // `b` under `a` violates a -> eps.
        let mut bad2 = t.clone();
        let a1 = bad2.by_nid(Nid(2)).unwrap();
        bad2.add_child(a1, Nid(10), alpha.get("b").unwrap(), Rat::ZERO)
            .unwrap();
        assert!(!restricted.contains(&bad2));

        // Wrong root label: answers empty, so not in q^-1(A) (the
        // recorded answer was nonempty), and certainly not in the
        // restriction either.
        let other = DataTree::new(Nid(7), alpha.get("a").unwrap(), Rat::ZERO);
        assert!(!tqa.contains(&other));
        assert!(!restricted.contains(&other));

        // No `a` child at all violates a+.
        let mut no_a = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        no_a.add_child(no_a.root(), Nid(1), alpha.get("a").unwrap(), Rat::from(1))
            .unwrap();
        // (has node 1 = the known answer node, so still conforms)
        assert!(restricted.contains(&no_a));
    }

    #[test]
    fn witnesses_satisfy_the_type() {
        let (mut alpha, ty, t) = setup();
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "b", Cond::True).unwrap();
        let q = bld.build();
        let ans = q.eval(&t);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q, &ans).unwrap();
        let restricted = restrict_to_type(refiner.current(), &ty);
        let w = restricted.witness(&mut NidGen::starting_at(100)).unwrap();
        assert!(ty.accepts(&w), "witness conforms to the tree type");
        assert!(refiner.current().contains(&w));
    }

    #[test]
    fn mandatory_label_missing_empties_rep() {
        // A type whose root requires a label that no symbol of the
        // incomplete tree can produce yields an empty restriction.
        let mut alpha = Alphabet::new();
        let ty = TreeTypeBuilder::new(&mut alpha)
            .root("root")
            .rule("root", &[("missing", Mult::One)])
            .build()
            .unwrap();
        let r = alpha.get("root").unwrap();
        let it = IncompleteTree::universal(&[r], &["root"]);
        let restricted = restrict_to_type(&it, &ty);
        assert!(restricted.is_empty());
    }

    #[test]
    fn opt_budget_with_two_data_nodes_contradicts() {
        // Incomplete tree asserting two b-children (data nodes) under
        // root; type says b?.
        let (mut alpha, ty, t) = setup();
        let mut t2 = t.clone();
        t2.add_child(t2.root(), Nid(4), alpha.get("b").unwrap(), Rat::from(7))
            .unwrap();
        // Query extracting both b's.
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "b", Cond::True).unwrap();
        let q = bld.build();
        let ans = q.eval(&t2);
        assert_eq!(ans.len(), 3); // root + two b's
        let tqa = query_answer_tree(&q, &ans, &alpha).unwrap();
        assert!(!tqa.is_empty());
        let restricted = restrict_to_type(&tqa, &ty);
        assert!(restricted.is_empty(), "b? cannot host two known b nodes");
    }

    #[test]
    fn universal_restricted_equals_type() {
        // Restricting the universal tree by ρ yields exactly rep(ρ).
        let (alpha, ty, t) = setup();
        let labels: Vec<_> = alpha.labels().collect();
        let names: Vec<&str> = labels.iter().map(|&l| alpha.name(l)).collect();
        let it = IncompleteTree::universal(&labels, &names);
        let restricted = restrict_to_type(&it, &ty);
        assert!(restricted.contains(&t));
        // A conforming variant.
        let mut ok = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        ok.add_child(ok.root(), Nid(1), alpha.get("a").unwrap(), Rat::from(9))
            .unwrap();
        assert!(ty.accepts(&ok));
        assert!(restricted.contains(&ok));
        // Non-conforming: root -> b only.
        let mut bad = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        bad.add_child(bad.root(), Nid(1), alpha.get("b").unwrap(), Rat::from(9))
            .unwrap();
        assert!(!ty.accepts(&bad));
        assert!(!restricted.contains(&bad));
    }
}
