//! ID-interned, struct-of-arrays storage for multiplicity atoms and
//! disjunctions — the integer-indexed kernel representation behind the
//! refine/minimize hot paths.
//!
//! The CPU-bound kernels (the `⋊⋉` product of Lemma 3.3 and the
//! bisimulation partition refinement of `minimize`) used to compare and
//! hash nested `Vec<Vec<…>>` structures per symbol per round. This
//! module hash-conses those structures once into append-only tables:
//! equal content maps to the *same* `u32` id, so every later comparison
//! and hash is over flat integer slices. Storage is struct-of-arrays —
//! one flat payload vector plus a span table — so a table of a million
//! atoms is two allocations, not a million.
//!
//! # Determinism
//!
//! Ids are assigned in first-encounter order of the *content*, and
//! every caller interns in a deterministic order (symbol order, then
//! atom order within a µ). The internal probe tables use a fixed
//! FNV-1a-style hash — no `RandomState`, no per-process seeds — and id
//! assignment never depends on probe order, only on insertion order.
//! Two runs over the same input therefore assign identical ids, which
//! is what lets the minimize partition use raw ids as canonical keys
//! without leaking nondeterminism into block numbering (pinned by
//! `tests/intern_equiv.rs`).
//!
//! Every lookup is written with `get`-style accessors, so the module
//! needs no bounds-panic waivers: a (impossible, tested) out-of-range
//! id yields an empty slice rather than a panic.

use crate::ctt::{ConditionalTreeType, Sym};
use iixml_obs::{keys, LazyCounter};
use iixml_tree::Mult;

/// Distinct atoms interned across all tables.
static OBS_ATOMS: LazyCounter = LazyCounter::new(keys::CORE_INTERN_ATOMS);
/// Distinct disjunctions interned across all tables.
static OBS_DISJS: LazyCounter = LazyCounter::new(keys::CORE_INTERN_DISJS);

/// Id of an interned atom (entry slice) in an [`InternTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The id as a table index.
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// Id of an interned disjunction (atom-id slice) in an [`InternTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct DisjId(pub u32);

impl DisjId {
    /// The id as a table index.
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// One fixed-function hash unit per interned element. The mix constants
/// are FNV-1a's; the point is not cryptography but a *fixed* function:
/// the same content hashes the same in every process, unlike
/// `RandomState`.
pub trait HashUnit: Copy + Eq {
    /// A 64-bit projection of the element, fed to the slice hash.
    fn unit(self) -> u64;
}

impl HashUnit for u32 {
    fn unit(self) -> u64 {
        self as u64
    }
}

impl HashUnit for AtomId {
    fn unit(self) -> u64 {
        self.0 as u64
    }
}

impl HashUnit for (Sym, Mult) {
    fn unit(self) -> u64 {
        ((self.0.ix() as u64) << 2) | self.1 as u64
    }
}

impl HashUnit for (u32, Mult) {
    fn unit(self) -> u64 {
        ((self.0 as u64) << 2) | self.1 as u64
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn hash_slice<T: HashUnit>(slice: &[T]) -> u64 {
    let mut h = FNV_OFFSET ^ slice.len() as u64;
    for &x in slice {
        h = (h ^ x.unit()).wrapping_mul(FNV_PRIME);
    }
    // Final avalanche: FNV's low bits are weak and the probe table
    // masks with them.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 29)
}

/// Open-addressing probe table mapping precomputed hashes to ids.
/// Stores `(hash, id)` pairs so growth rehashes without touching the
/// interned payloads; the load factor stays below 1/2 so every probe
/// chain hits an empty slot.
struct ProbeTable {
    slots: Vec<(u64, u32)>,
}

const EMPTY: u32 = u32::MAX;

impl ProbeTable {
    fn new() -> ProbeTable {
        ProbeTable {
            slots: vec![(0, EMPTY); 64],
        }
    }

    /// Grows (if needed) so one more insert keeps load < 1/2.
    fn reserve_one(&mut self, len: usize) {
        if (len + 1) * 2 < self.slots.len() {
            return;
        }
        let mut grown = vec![(0u64, EMPTY); self.slots.len() * 2];
        let mask = grown.len() - 1;
        for &(h, id) in &self.slots {
            if id == EMPTY {
                continue;
            }
            let mut i = (h as usize) & mask;
            loop {
                match grown.get_mut(i) {
                    Some(slot) if slot.1 == EMPTY => {
                        *slot = (h, id);
                        break;
                    }
                    Some(_) => i = (i + 1) & mask,
                    // Unreachable (i ≤ mask by construction); restart
                    // keeps the scan total without an indexing panic.
                    None => i = 0,
                }
            }
        }
        self.slots = grown;
    }

    /// Looks up `hash`: `Ok(id)` when `eq` accepts a stored candidate,
    /// `Err(slot)` with the empty slot where the new entry belongs.
    /// Callers must `reserve_one` first (so an empty slot exists) and
    /// not mutate the table between `find` and `set`.
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots.get(i) {
                Some(&(h, id)) if id != EMPTY => {
                    if h == hash && eq(id) {
                        return Ok(id);
                    }
                    i = (i + 1) & mask;
                }
                Some(_) => return Err(i),
                None => i = 0,
            }
        }
    }

    fn set(&mut self, slot: usize, hash: u64, id: u32) {
        if let Some(s) = self.slots.get_mut(slot) {
            *s = (hash, id);
        }
    }
}

/// Hash-consing interner for slices of `T`: equal slices get equal
/// ids, ids count up from 0 in first-encounter order, and the payload
/// lives in one flat vector (struct-of-arrays).
pub struct SliceInterner<T> {
    data: Vec<T>,
    spans: Vec<(u32, u32)>,
    table: ProbeTable,
}

impl<T: HashUnit> SliceInterner<T> {
    /// An empty interner.
    pub fn new() -> SliceInterner<T> {
        SliceInterner {
            data: Vec::new(),
            spans: Vec::new(),
            table: ProbeTable::new(),
        }
    }

    /// Interns `slice`, returning its id (existing on a content match,
    /// fresh — the current [`SliceInterner::len`] — otherwise).
    pub fn intern(&mut self, slice: &[T]) -> u32 {
        let hash = hash_slice(slice);
        self.table.reserve_one(self.spans.len());
        let (data, spans) = (&self.data, &self.spans);
        let lookup = |id: u32| {
            spans
                .get(id as usize)
                .and_then(|&(lo, hi)| data.get(lo as usize..hi as usize))
                .is_some_and(|stored| stored == slice)
        };
        match self.table.find(hash, lookup) {
            Ok(id) => id,
            Err(slot) => {
                let lo = self.data.len() as u32;
                self.data.extend_from_slice(slice);
                let id = self.spans.len() as u32;
                self.spans.push((lo, self.data.len() as u32));
                self.table.set(slot, hash, id);
                id
            }
        }
    }

    /// The interned slice for `id` (empty for an out-of-range id).
    pub fn get(&self, id: u32) -> &[T] {
        self.spans
            .get(id as usize)
            .and_then(|&(lo, hi)| self.data.get(lo as usize..hi as usize))
            .unwrap_or(&[])
    }

    /// Number of distinct slices interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl<T: HashUnit> Default for SliceInterner<T> {
    fn default() -> Self {
        SliceInterner::new()
    }
}

/// The two-level store: atoms (entry slices) and disjunctions (atom-id
/// slices), each hash-consed. Append-only; ids are dense and stable.
pub struct InternTable {
    atoms: SliceInterner<(Sym, Mult)>,
    disjs: SliceInterner<AtomId>,
}

impl InternTable {
    /// An empty table.
    pub fn new() -> InternTable {
        InternTable {
            atoms: SliceInterner::new(),
            disjs: SliceInterner::new(),
        }
    }

    /// Interns one atom's entry slice (callers pass `SAtom::entries`,
    /// already sorted by `SAtom::new`, so content equality is slice
    /// equality).
    pub fn intern_atom(&mut self, entries: &[(Sym, Mult)]) -> AtomId {
        AtomId(self.atoms.intern(entries))
    }

    /// Interns one disjunction as its (ordered) list of atom ids.
    pub fn intern_disj(&mut self, atoms: &[AtomId]) -> DisjId {
        DisjId(self.disjs.intern(atoms))
    }

    /// The entries of an interned atom.
    pub fn atom(&self, a: AtomId) -> &[(Sym, Mult)] {
        self.atoms.get(a.0)
    }

    /// The atom ids of an interned disjunction.
    pub fn disj(&self, d: DisjId) -> &[AtomId] {
        self.disjs.get(d.0)
    }

    /// Number of distinct atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of distinct disjunctions.
    pub fn disj_count(&self) -> usize {
        self.disjs.len()
    }
}

impl Default for InternTable {
    fn default() -> Self {
        InternTable::new()
    }
}

/// A conditional tree type's µ assignment lowered onto an
/// [`InternTable`]: `mu[s.ix()]` is the interned disjunction of symbol
/// `s`. Built per kernel call (symbol order), so ids are
/// allocation-order-deterministic and two builds over the same type
/// agree exactly.
pub struct InternedType {
    /// The backing store (shared by every symbol's µ).
    pub table: InternTable,
    /// Per-symbol interned µ, indexed by `Sym::ix`.
    pub mu: Vec<DisjId>,
}

impl InternedType {
    /// Lowers `ty` onto a fresh table. Heavily shared µs (e.g. the
    /// `all_star` disjunction every `τ_a` points at) collapse to one
    /// interned id each, so the table is usually far smaller than the
    /// symbol count times the µ size.
    pub fn build(ty: &ConditionalTreeType) -> InternedType {
        let mut table = InternTable::new();
        let mut mu = Vec::with_capacity(ty.sym_count());
        let mut ids: Vec<AtomId> = Vec::new();
        for s in ty.syms() {
            ids.clear();
            for atom in ty.mu(s).atoms() {
                ids.push(table.intern_atom(atom.entries()));
            }
            mu.push(table.intern_disj(&ids));
        }
        OBS_ATOMS.add(table.atom_count() as u64);
        OBS_DISJS.add(table.disj_count() as u64);
        InternedType { table, mu }
    }

    /// The interned µ of symbol `s` (the empty disjunction id for an
    /// out-of-range symbol, which no well-formed caller produces).
    pub fn mu_of(&self, s: Sym) -> DisjId {
        self.mu.get(s.ix()).copied().unwrap_or(DisjId(EMPTY))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctt::{Disjunction, SAtom, SymTarget};
    use iixml_tree::Label;
    use iixml_values::IntervalSet;

    #[test]
    fn equal_content_same_id_distinct_content_distinct_id() {
        let mut t = InternTable::new();
        let a = t.intern_atom(&[(Sym(0), Mult::One), (Sym(1), Mult::Star)]);
        let b = t.intern_atom(&[(Sym(0), Mult::One), (Sym(1), Mult::Star)]);
        let c = t.intern_atom(&[(Sym(0), Mult::One), (Sym(1), Mult::Plus)]);
        let d = t.intern_atom(&[(Sym(0), Mult::One)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(t.atom_count(), 3);
        assert_eq!(t.atom(a), &[(Sym(0), Mult::One), (Sym(1), Mult::Star)]);
        assert_eq!(t.atom(d), &[(Sym(0), Mult::One)]);
        let d1 = t.intern_disj(&[a, c]);
        let d2 = t.intern_disj(&[a, c]);
        let d3 = t.intern_disj(&[c, a]);
        assert_eq!(d1, d2);
        assert_ne!(d1, d3, "disjunction ids are order-sensitive");
        assert_eq!(t.disj(d1), &[a, c]);
    }

    #[test]
    fn ids_count_up_in_first_encounter_order() {
        let mut t = InternTable::new();
        assert_eq!(t.intern_atom(&[(Sym(5), Mult::Opt)]), AtomId(0));
        assert_eq!(t.intern_atom(&[]), AtomId(1));
        assert_eq!(t.intern_atom(&[(Sym(5), Mult::Opt)]), AtomId(0));
        assert_eq!(t.intern_atom(&[(Sym(6), Mult::Opt)]), AtomId(2));
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut t: SliceInterner<u32> = SliceInterner::new();
        let ids: Vec<u32> = (0..10_000u32).map(|i| t.intern(&[i, i + 1])).collect();
        assert_eq!(t.len(), 10_000);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(id, i as u32, "fresh ids count up");
            assert_eq!(t.get(id), &[i as u32, i as u32 + 1]);
        }
        // Re-interning after growth still finds every entry.
        for i in 0..10_000u32 {
            assert_eq!(t.intern(&[i, i + 1]), i);
        }
    }

    #[test]
    fn out_of_range_ids_are_empty_not_panics() {
        let t = InternTable::new();
        assert!(t.atom(AtomId(7)).is_empty());
        assert!(t.disj(DisjId(u32::MAX)).is_empty());
    }

    #[test]
    fn interned_type_is_deterministic_and_shares_mus() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a = ty.add_symbol("a", SymTarget::Lab(Label(1)), IntervalSet::all());
        let b = ty.add_symbol("b", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction(vec![
                SAtom::new(vec![(a, Mult::Star)]),
                SAtom::new(vec![(b, Mult::Star)]),
            ]),
        );
        // a and b share µ content: they must intern to the same DisjId.
        ty.set_mu(a, Disjunction::leaf());
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        let i1 = InternedType::build(&ty);
        let i2 = InternedType::build(&ty);
        assert_eq!(i1.mu, i2.mu, "two builds assign identical ids");
        assert_eq!(i1.mu_of(a), i1.mu_of(b));
        assert_ne!(i1.mu_of(r), i1.mu_of(a));
        assert_eq!(i1.table.atom_count(), 3, "two star atoms + one leaf");
    }
}
