#![warn(missing_docs)]

//! The core of the paper: conditional tree types, incomplete trees,
//! Algorithm Refine, querying with incomplete information, and
//! conjunctive incomplete trees.
//!
//! Module map (paper section in parentheses):
//! * [`ctt`] — conditional tree types with specialization, emptiness,
//!   useless-symbol removal (§2, Lemma 2.5, Corollary 2.6);
//! * [`itree`] — incomplete trees, `rep` membership, well-formedness,
//!   unambiguity (§2, Definitions 2.7 and 3.1);
//! * [`prefix`] — certain/possible prefix tests (Theorem 2.8);
//! * [`refine`] — `T_{q,A}` construction, intersection of unambiguous
//!   incomplete trees, Algorithm Refine (§3.1, Lemmas 3.2–3.3,
//!   Theorem 3.4);
//! * [`type_intersect`] — intersection with the source tree type
//!   (Theorem 3.5);
//! * [`answer`] — querying incomplete trees: `q(T)`, full
//!   answerability, certain/possible answers (§3.3, Theorem 3.14,
//!   Corollaries 3.15 and 3.18);
//! * [`conjunctive`] — conjunctive incomplete trees and Refine⁺ (§3.2,
//!   Theorems 3.8 and 3.10).

pub mod answer;
pub mod conjunctive;
pub mod ctt;
pub mod intern;
pub mod io;
pub mod itree;
pub mod minimize;
pub mod prefix;
pub mod refine;
pub mod type_intersect;

pub use answer::{match_sets, MatchSets, QueryOnIncomplete};
pub use conjunctive::ConjunctiveTree;
pub use ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget, SymbolInfo};
pub use itree::{IncompleteTree, ItreeError, NodeInfo};
pub use refine::Refiner;
