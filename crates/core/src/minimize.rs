//! Bisimulation minimization of incomplete trees.
//!
//! Algorithm Refine's product construction (Lemma 3.3) creates many
//! specialized symbols that are semantically identical — e.g. after the
//! auxiliary queries of Proposition 3.13 pin all children of a node, the
//! `τ̄`/`τ̂`/`else` specializations of a data node collapse to the same
//! behavior. The paper presents the resulting simplified incomplete tree
//! directly; this module makes the simplification explicit and general:
//!
//! * symbols are partitioned by *bisimilarity* — same specialization
//!   target, same (normalized) condition, and µ's that coincide once
//!   entries are mapped to partition blocks;
//! * each block becomes one symbol; entries of one atom that fall into
//!   the same block are combined when the resulting occurrence-count set
//!   is expressible as a multiplicity (`1`, `?`, `+`, `⋆`) — blocks that
//!   would need an inexpressible count (e.g. "exactly 2") are *frozen*
//!   (not merged), so minimization is always `rep`-preserving;
//! * duplicate atoms in a disjunction are removed.
//!
//! [`IncompleteTree::minimize`] is idempotent and `rep`-preserving; the
//! [`crate::Refiner`] applies it after every step, which keeps benign
//! chains (in particular Proposition 3.13's) polynomial.

use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget};
use crate::intern::{AtomId, InternedType, SliceInterner};
use crate::itree::IncompleteTree;
use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_tree::Mult;
use iixml_values::IntervalSet;
use std::collections::BTreeSet;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Wall time of each `minimize()` call.
static OBS_MINIMIZE_NS: LazyHistogram = LazyHistogram::new(keys::CORE_MINIMIZE_CALL_NS);
/// Symbols eliminated by bisimulation merging, across all calls.
static OBS_MERGED: LazyCounter = LazyCounter::new(keys::CORE_MINIMIZE_SYMBOLS_MERGED);
/// Distinct partition signatures interned across all refinement rounds.
static OBS_INTERNED: LazyCounter = LazyCounter::new(keys::CORE_MINIMIZE_INTERNED_SIGS);

/// Minimum symbols per worker before a partition-refinement round
/// spreads signature computation over threads (reference path only).
const SIG_GRAIN: usize = 64;

/// Distinct atoms per chunk when a refinement round canonicalizes atoms
/// in parallel (`IIXML_PAR_CHUNK` overrides).
const SIG_CHUNK: usize = 128;

/// Atom-table size at or below which a refinement round stays inline
/// (`IIXML_PAR_CUTOFF` overrides).
const SIG_CUTOFF: usize = 512;

fn bounds(m: Mult) -> (u8, bool) {
    // (lower bound, unbounded?)
    match m {
        Mult::One => (1, false),
        Mult::Opt => (0, false),
        Mult::Plus => (1, true),
        Mult::Star => (0, true),
    }
}

/// Combines the multiplicities of same-block entries; `None` when the
/// combined count set is not expressible as a single multiplicity.
fn combine(ms: &[Mult]) -> Option<Mult> {
    if ms.len() == 1 {
        return Some(ms[0]);
    }
    let lo: u8 = ms.iter().map(|&m| bounds(m).0).sum();
    let unbounded = ms.iter().any(|&m| bounds(m).1);
    let hi_bounded: u8 = ms.iter().map(|&m| !bounds(m).1 as u8).sum::<u8>();
    match (lo, unbounded) {
        (0, true) => Some(Mult::Star),
        (1, true) => Some(Mult::Plus),
        (0, false) if hi_bounded == 1 => Some(Mult::Opt),
        (1, false) if hi_bounded == 1 => Some(Mult::One),
        _ => None,
    }
}

impl IncompleteTree {
    /// Merges bisimilar symbols and removes duplicate atoms, preserving
    /// `rep` exactly. Run [`IncompleteTree::trim`] first for best effect
    /// (the [`crate::Refiner`] does both).
    pub fn minimize(&self) -> IncompleteTree {
        let _span = OBS_MINIMIZE_NS.time();
        let ty = self.ty();
        let n = ty.sym_count();
        if n == 0 {
            return self.clone();
        }
        // Lower every µ onto the interned kernel store once per call:
        // the freeze loop and every partition round below walk flat
        // id slices instead of nested atom structures, and an atom
        // shared by many symbols (the `all_star` µ of `T_{q,A}`, the
        // product atoms duplicated across specializations) is visited
        // exactly once per pass.
        let interned = InternedType::build(ty);
        // Frozen symbols are never merged with anything.
        let mut frozen: HashSet<Sym> = HashSet::new();
        let mut ent: Vec<(usize, Mult)> = Vec::new();
        let mut ms: Vec<Mult> = Vec::new();
        loop {
            let block_of = self.partition(&interned, &frozen);
            // Check expressibility of every within-atom merge, per
            // *distinct* atom. Identical to the per-symbol walk (an
            // atom violates independently of which µ references it)
            // but without revisiting shared atoms.
            let mut violated: BTreeSet<usize> = BTreeSet::new();
            for a in 0..interned.table.atom_count() {
                ent.clear();
                for &(c, m) in interned.table.atom(AtomId(a as u32)) {
                    ent.push((block_of[c.ix()], m));
                }
                ent.sort_unstable_by_key(|e| e.0);
                let mut i = 0;
                while i < ent.len() {
                    let block = ent[i].0;
                    ms.clear();
                    while i < ent.len() && ent[i].0 == block {
                        ms.push(ent[i].1);
                        i += 1;
                    }
                    if combine(&ms).is_none() {
                        violated.insert(block);
                    }
                }
            }
            if violated.is_empty() {
                let out = self.rebuild(&block_of);
                OBS_MERGED.add((n - out.ty().sym_count().min(n)) as u64);
                return out;
            }
            // Freeze every member of each offending block.
            for c in ty.syms() {
                if violated.contains(&block_of[c.ix()]) {
                    frozen.insert(c);
                }
            }
        }
    }

    /// Coarsest partition compatible with (target, cond, frozen-ness)
    /// refined by µ signatures, computed over the interned kernel
    /// representation: each round canonicalizes every *distinct* atom
    /// once (entries mapped to current blocks, sorted — parallel in
    /// chunks with per-worker scratch), then interns per-symbol
    /// signatures as flat `u32` slices. Interning stays sequential in
    /// symbol order and canon ids are assigned in atom-id order, so
    /// block numbering is first-encounter order — byte-identical to the
    /// structural reference path at any worker width (pinned by
    /// `tests/intern_equiv.rs`).
    fn partition(&self, interned: &InternedType, frozen: &HashSet<Sym>) -> Vec<usize> {
        let ty = self.ty();
        let n = ty.sym_count();
        // Initial blocks: by (target, cond), frozen symbols isolated.
        // The key is the structured (SymTarget, IntervalSet) pair hashed
        // directly — the old keying rendered both to `format!`-allocated
        // Strings per symbol per call, which showed up as the top
        // allocation site in minimize (see BENCH_pr3.json,
        // `sig_interning`). Frozen symbols never share, so they take a
        // fresh block without touching the map; block numbering is
        // first-encounter order either way.
        let mut block_of: Vec<usize> = vec![0; n];
        {
            let mut key_to_block: HashMap<(SymTarget, &IntervalSet), usize> = HashMap::new();
            let mut next = 0usize;
            for s in ty.syms() {
                let info = ty.info(s);
                let b = if frozen.contains(&s) {
                    let b = next;
                    next += 1;
                    b
                } else {
                    *key_to_block
                        .entry((info.target, &info.cond))
                        .or_insert_with(|| {
                            let b = next;
                            next += 1;
                            b
                        })
                };
                block_of[s.ix()] = b;
            }
        }
        // Refine until stable. A round is two stages:
        //
        // 1. Canonicalize every distinct atom under the current
        //    partition: entries mapped to `(block, mult)`, sorted. A
        //    canonical form is a pure function of the atom and the
        //    previous round's blocks, so this stage fans out in chunks
        //    with a reusable per-worker scratch vector; results merge
        //    in atom-id order. Equal forms then intern to equal
        //    `canon` ids (assigned in atom-id order — deterministic).
        // 2. Per symbol, the signature is its current block plus the
        //    sorted-deduped canon ids of its µ's atoms — a flat `u32`
        //    slice. Interning it yields the next-round block directly,
        //    since `SliceInterner` numbers fresh slices in
        //    first-encounter order, exactly like the HashMap-with-
        //    running-counter it replaces.
        let atom_ids: Vec<u32> = (0..interned.table.atom_count() as u32).collect();
        loop {
            let forms: Vec<Vec<(u32, Mult)>> = iixml_par::par_map_chunks(
                &atom_ids,
                SIG_CHUNK,
                SIG_CUTOFF,
                Vec::new,
                |scratch: &mut Vec<(u32, Mult)>, &a, _| {
                    scratch.clear();
                    for &(c, m) in interned.table.atom(AtomId(a)) {
                        scratch.push((block_of[c.ix()] as u32, m));
                    }
                    scratch.sort_unstable();
                    scratch.clone()
                },
            );
            let mut canon_of: Vec<u32> = Vec::with_capacity(forms.len());
            let mut canon: SliceInterner<(u32, Mult)> = SliceInterner::new();
            for form in &forms {
                canon_of.push(canon.intern(form));
            }
            let mut sig: SliceInterner<u32> = SliceInterner::new();
            let mut next_block: Vec<usize> = vec![0; n];
            let mut ids: Vec<u32> = Vec::new();
            let mut buf: Vec<u32> = Vec::new();
            for s in ty.syms() {
                ids.clear();
                for &a in interned.table.disj(interned.mu_of(s)) {
                    ids.push(canon_of[a.ix()]);
                }
                ids.sort_unstable();
                ids.dedup();
                buf.clear();
                buf.push(block_of[s.ix()] as u32);
                buf.extend_from_slice(&ids);
                next_block[s.ix()] = sig.intern(&buf) as usize;
            }
            OBS_INTERNED.add(sig.len() as u64);
            if next_block == block_of {
                return block_of;
            }
            block_of = next_block;
        }
    }

    fn rebuild(&self, block_of: &[usize]) -> IncompleteTree {
        let ty = self.ty();
        let mut rep_sym: HashMap<usize, Sym> = HashMap::new();
        let mut out = ConditionalTreeType::new();
        for s in ty.syms() {
            let b = block_of[s.ix()];
            if let std::collections::hash_map::Entry::Vacant(e) = rep_sym.entry(b) {
                let info = ty.info(s);
                let ns = out.add_symbol(info.name.clone(), info.target, info.cond.clone());
                e.insert(ns);
            }
        }
        // Build µ from each block representative's original µ.
        let mut done: HashSet<usize> = HashSet::new();
        for s in ty.syms() {
            let b = block_of[s.ix()];
            if !done.insert(b) {
                continue;
            }
            let mut atoms: Vec<SAtom> = Vec::new();
            for atom in ty.mu(s).atoms() {
                let mut groups: BTreeMap<Sym, Vec<Mult>> = BTreeMap::new();
                for &(c, m) in atom.entries() {
                    groups
                        .entry(rep_sym[&block_of[c.ix()]])
                        .or_default()
                        .push(m);
                }
                let entries: Vec<(Sym, Mult)> = groups
                    .into_iter()
                    .map(|(c, ms)| {
                        // Infallible: any block whose multiplicities would
                        // not combine was split off before this rebuild.
                        let m =
                            combine(&ms).expect("inexpressible blocks were frozen before rebuild");
                        (c, m)
                    })
                    .collect();
                atoms.push(SAtom::new(entries));
            }
            atoms.sort_by(|x, y| x.entries().iter().cmp(y.entries().iter()));
            atoms.dedup();
            out.set_mu(rep_sym[&b], Disjunction(atoms));
        }
        let mut roots: Vec<Sym> = ty
            .roots()
            .iter()
            .map(|r| rep_sym[&block_of[r.ix()]])
            .collect();
        roots.sort();
        roots.dedup();
        out.set_roots(roots);
        // Infallible: minimization rewrites symbols only — the node set is
        // exactly the one this (well-formed) tree already carries.
        IncompleteTree::new(self.nodes().clone(), out)
            .expect("nodes unchanged")
            .trim()
    }

    /// The pre-interning structural minimization, preserved verbatim:
    /// nested-structure signatures hashed through a `HashMap` with a
    /// running block counter. Kept as (a) the equivalence oracle for
    /// `tests/intern_equiv.rs` — the interned path must serialize
    /// byte-identically to this one — and (b) the "pre" row of the
    /// `cpubench` group, so the committed speedup is measured against
    /// the real old code, not a remembered number.
    pub fn minimize_reference(&self) -> IncompleteTree {
        let _span = OBS_MINIMIZE_NS.time();
        let ty = self.ty();
        let n = ty.sym_count();
        if n == 0 {
            return self.clone();
        }
        let mut frozen: HashSet<Sym> = HashSet::new();
        loop {
            let block_of = self.partition_reference(&frozen);
            let mut violated = false;
            for s in ty.syms() {
                for atom in ty.mu(s).atoms() {
                    let mut groups: BTreeMap<usize, Vec<Mult>> = BTreeMap::new();
                    for &(c, m) in atom.entries() {
                        groups.entry(block_of[c.ix()]).or_default().push(m);
                    }
                    for (block, ms) in groups {
                        if combine(&ms).is_none() {
                            for c in ty.syms() {
                                if block_of[c.ix()] == block {
                                    frozen.insert(c);
                                }
                            }
                            violated = true;
                        }
                    }
                }
            }
            if !violated {
                let out = self.rebuild(&block_of);
                OBS_MERGED.add((n - out.ty().sym_count().min(n)) as u64);
                return out;
            }
        }
    }

    /// The structural partition behind [`IncompleteTree::minimize_reference`].
    fn partition_reference(&self, frozen: &HashSet<Sym>) -> Vec<usize> {
        let ty = self.ty();
        let n = ty.sym_count();
        let mut block_of: Vec<usize> = vec![0; n];
        {
            let mut key_to_block: HashMap<(SymTarget, &IntervalSet), usize> = HashMap::new();
            let mut next = 0usize;
            for s in ty.syms() {
                let info = ty.info(s);
                let b = if frozen.contains(&s) {
                    let b = next;
                    next += 1;
                    b
                } else {
                    *key_to_block
                        .entry((info.target, &info.cond))
                        .or_insert_with(|| {
                            let b = next;
                            next += 1;
                            b
                        })
                };
                block_of[s.ix()] = b;
            }
        }
        // Signature: (current block, canonical atom list over blocks).
        type Signature = (usize, Vec<Vec<(usize, Mult)>>);
        let syms: Vec<Sym> = ty.syms().collect();
        loop {
            let sigs: Vec<Signature> = iixml_par::par_map_ref(&syms, SIG_GRAIN, |&s| {
                let mut atoms: Vec<Vec<(usize, Mult)>> = ty
                    .mu(s)
                    .atoms()
                    .iter()
                    .map(|a| {
                        let mut v: Vec<(usize, Mult)> = a
                            .entries()
                            .iter()
                            .map(|&(c, m)| (block_of[c.ix()], m))
                            .collect();
                        v.sort();
                        v
                    })
                    .collect();
                atoms.sort();
                atoms.dedup();
                (block_of[s.ix()], atoms)
            });
            let mut sig_to_block: HashMap<Signature, usize> = HashMap::with_capacity(n);
            let mut next_block: Vec<usize> = vec![0; n];
            for (s, key) in syms.iter().zip(sigs) {
                let fresh = sig_to_block.len();
                let b = *sig_to_block.entry(key).or_insert(fresh);
                next_block[s.ix()] = b;
            }
            OBS_INTERNED.add(sig_to_block.len() as u64);
            if next_block == block_of {
                return block_of;
            }
            block_of = next_block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itree::NodeInfo;
    use iixml_tree::{DataTree, Label, Nid};
    use iixml_values::{Cond, IntervalSet, Rat};

    /// Two symbols with identical behavior under the root: must merge.
    #[test]
    fn merges_identical_star_symbols() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a1 = ty.add_symbol(
            "a1",
            SymTarget::Lab(Label(1)),
            Cond::gt(Rat::ZERO).to_intervals(),
        );
        let a2 = ty.add_symbol(
            "a2",
            SymTarget::Lab(Label(1)),
            Cond::gt(Rat::ZERO).to_intervals(),
        );
        ty.set_mu(
            r,
            Disjunction(vec![
                SAtom::new(vec![(a1, Mult::Star)]),
                SAtom::new(vec![(a2, Mult::Star)]),
            ]),
        );
        ty.set_mu(a1, Disjunction::leaf());
        ty.set_mu(a2, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let m = it.minimize();
        assert_eq!(m.ty().sym_count(), 2, "a1/a2 merged");
        // The two atoms collapsed to one.
        let root_sym = m.ty().roots()[0];
        assert_eq!(m.ty().mu(root_sym).atoms().len(), 1);
        // Semantics preserved.
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(1), Label(1), Rat::from(3))
            .unwrap();
        assert!(it.contains(&t) && m.contains(&t));
        let mut bad = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        bad.add_child(bad.root(), Nid(1), Label(1), Rat::from(-3))
            .unwrap();
        assert!(!it.contains(&bad) && !m.contains(&bad));
    }

    /// Symbols with different conditions must not merge.
    #[test]
    fn keeps_distinguishable_symbols() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a1 = ty.add_symbol(
            "a1",
            SymTarget::Lab(Label(1)),
            Cond::gt(Rat::ZERO).to_intervals(),
        );
        let a2 = ty.add_symbol(
            "a2",
            SymTarget::Lab(Label(1)),
            Cond::lt(Rat::ZERO).to_intervals(),
        );
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(a1, Mult::Star), (a2, Mult::Star)])),
        );
        ty.set_mu(a1, Disjunction::leaf());
        ty.set_mu(a2, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let m = it.minimize();
        assert_eq!(m.ty().sym_count(), 3);
    }

    /// Same condition, different subtree structure: no merge.
    #[test]
    fn structure_distinguishes() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a1 = ty.add_symbol("a1", SymTarget::Lab(Label(1)), IntervalSet::all());
        let a2 = ty.add_symbol("a2", SymTarget::Lab(Label(1)), IntervalSet::all());
        let b = ty.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(a1, Mult::Star), (a2, Mult::Star)])),
        );
        ty.set_mu(a1, Disjunction::single(SAtom::new(vec![(b, Mult::One)])));
        ty.set_mu(a2, Disjunction::leaf());
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let m = it.minimize();
        assert_eq!(m.ty().sym_count(), 4);
    }

    /// The inexpressible-count guard: two mandatory bounded entries of a
    /// would-be block must stay separate.
    #[test]
    fn freezes_inexpressible_merges() {
        let mut nodes = std::collections::BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        // Two identical-behavior Lab symbols, both mandatory in the same
        // atom: merged they would require "exactly 2".
        let a1 = ty.add_symbol("a1", SymTarget::Lab(Label(1)), IntervalSet::all());
        let a2 = ty.add_symbol("a2", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(a1, Mult::One), (a2, Mult::One)])),
        );
        ty.set_mu(a1, Disjunction::leaf());
        ty.set_mu(a2, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(nodes, ty).unwrap();
        let m = it.minimize();
        // Exactly-two semantics preserved.
        let mut two = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        two.add_child(two.root(), Nid(10), Label(1), Rat::ZERO)
            .unwrap();
        two.add_child(two.root(), Nid(11), Label(1), Rat::ZERO)
            .unwrap();
        let mut one = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        one.add_child(one.root(), Nid(10), Label(1), Rat::ZERO)
            .unwrap();
        let mut three = two.clone();
        three
            .add_child(three.root(), Nid(12), Label(1), Rat::ZERO)
            .unwrap();
        for (t, expect) in [(&two, true), (&one, false), (&three, false)] {
            assert_eq!(it.contains(t), expect);
            assert_eq!(m.contains(t), expect, "minimization changed semantics");
        }
    }

    /// One + Star in a block combines to Plus.
    #[test]
    fn combine_rules() {
        assert_eq!(combine(&[Mult::Star, Mult::Star]), Some(Mult::Star));
        assert_eq!(combine(&[Mult::One, Mult::Star]), Some(Mult::Plus));
        assert_eq!(combine(&[Mult::Opt, Mult::Star]), Some(Mult::Star));
        assert_eq!(combine(&[Mult::Plus, Mult::Star]), Some(Mult::Plus));
        assert_eq!(combine(&[Mult::One, Mult::One]), None);
        assert_eq!(combine(&[Mult::Opt, Mult::Opt]), None);
        assert_eq!(combine(&[Mult::Plus, Mult::Plus]), None);
        assert_eq!(combine(&[Mult::One]), Some(Mult::One));
    }

    /// The interned partition must reproduce the structural reference
    /// exactly — same blocks, same numbering, same rebuilt type
    /// (the full-pipeline property lives in `tests/intern_equiv.rs`).
    #[test]
    fn interned_path_matches_reference() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a1 = ty.add_symbol("a1", SymTarget::Lab(Label(1)), IntervalSet::all());
        let a2 = ty.add_symbol("a2", SymTarget::Lab(Label(1)), IntervalSet::all());
        let b = ty.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        let c1 = ty.add_symbol("c1", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction(vec![
                SAtom::new(vec![(a1, Mult::Star), (b, Mult::One)]),
                SAtom::new(vec![(a2, Mult::Star), (c1, Mult::Opt)]),
            ]),
        );
        ty.set_mu(a1, Disjunction::single(SAtom::new(vec![(b, Mult::One)])));
        ty.set_mu(a2, Disjunction::single(SAtom::new(vec![(b, Mult::One)])));
        ty.set_mu(b, Disjunction::leaf());
        ty.set_mu(c1, Disjunction::single(SAtom::new(vec![(b, Mult::Plus)])));
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let interned = it.minimize();
        let reference = it.minimize_reference();
        assert_eq!(
            format!("{:?}", interned.ty()),
            format!("{:?}", reference.ty())
        );
        assert_eq!(interned.size(), reference.size());
    }

    /// Minimization is idempotent.
    #[test]
    fn idempotent() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a1 = ty.add_symbol("a1", SymTarget::Lab(Label(1)), IntervalSet::all());
        let a2 = ty.add_symbol("a2", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(a1, Mult::Star), (a2, Mult::Star)])),
        );
        ty.set_mu(a1, Disjunction::leaf());
        ty.set_mu(a2, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let m1 = it.minimize();
        let m2 = m1.minimize();
        assert_eq!(m1.ty().sym_count(), m2.ty().sym_count());
        assert_eq!(m1.size(), m2.size());
    }
}
