//! Certain and possible prefixes (Theorem 2.8).
//!
//! Given an incomplete tree `T` with data nodes `N` and a candidate data
//! tree `T`, the paper asks whether `T` is a *certain prefix* (every tree
//! in `rep(T)` has `T` as a prefix relative to `N`) or a *possible
//! prefix* (some tree does). Both are PTIME; the per-node step reduces to
//! bipartite matching between the children of a `T`-node and the entries
//! of a multiplicity atom.
//!
//! Implementation notes:
//! * The type is trimmed first, so every surviving symbol is productive —
//!   the precondition "no useless symbols" of the paper's algorithm.
//! * `Cert(u)` keeps a symbol only when its condition *forces* the node's
//!   value (`cond = {v}`): otherwise some represented tree places a
//!   different value there and the embedding is not guaranteed.
//! * Unpinned `T`-nodes are also allowed to embed onto instantiated data
//!   nodes (the prefix definition only pins nodes whose ids are in `N`);
//!   this slightly generalizes the paper's presentation, which relabels
//!   only the pinned nodes.
//! * Entries targeting data nodes contribute at most one occurrence per
//!   represented tree (Definition 2.7(4)), so they are never treated as
//!   repeatable slots.

use crate::ctt::{ConditionalTreeType, SAtom, Sym, SymTarget};
use crate::itree::IncompleteTree;
use iixml_tree::matching::Bipartite;
use iixml_tree::{DataTree, NodeRef};
use std::collections::HashMap;

struct PrefixAnalysis<'a> {
    it: &'a IncompleteTree,
    t: &'a DataTree,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Certain,
    Possible,
}

impl PrefixAnalysis<'_> {
    fn ty(&self) -> &ConditionalTreeType {
        self.it.ty()
    }

    /// Is symbol `s` admissible at `T`-node `u` (label/pinning/value)?
    fn match_ok(&self, u: NodeRef, s: Sym, mode: Mode) -> bool {
        let info = self.ty().info(s);
        let pinned = self.it.nodes().contains_key(&self.t.nid(u));
        match info.target {
            SymTarget::Node(n) => {
                if pinned && self.t.nid(u) != n {
                    return false;
                }
                let Some(ni) = self.it.node_info(n) else {
                    return false;
                };
                if ni.label != self.t.label(u) || ni.value != self.t.value(u) {
                    return false;
                }
            }
            SymTarget::Lab(l) => {
                if pinned || l != self.t.label(u) {
                    return false;
                }
            }
        }
        match mode {
            // Possible: the node's value merely satisfies the condition.
            Mode::Possible => info.cond.contains(self.t.value(u)),
            // Certain: the condition must *force* this exact value.
            Mode::Certain => info.cond.as_singleton() == Some(self.t.value(u)),
        }
    }

    /// The set of symbols `s` such that the subtree of `T` at `u` is a
    /// certain (resp. possible) prefix of every (resp. some) tree of
    /// `rep(T_s)` — the `Cert(n)` / `Poss(n)` sets of Theorem 2.8.
    fn analyze(&self, u: NodeRef, mode: Mode, memo: &mut HashMap<NodeRef, Vec<bool>>) -> Vec<bool> {
        if let Some(v) = memo.get(&u) {
            return v.clone();
        }
        // Children first (bottom-up).
        let kids = self.t.children(u).to_vec();
        let kid_sets: Vec<Vec<bool>> = kids.iter().map(|&c| self.analyze(c, mode, memo)).collect();
        let mut out = vec![false; self.ty().sym_count()];
        for s in self.ty().syms() {
            if !self.match_ok(u, s, mode) {
                continue;
            }
            let atoms = self.ty().mu(s).atoms();
            if atoms.is_empty() {
                continue; // unsatisfiable symbol (removed by trim anyway)
            }
            let ok = match mode {
                Mode::Certain => atoms.iter().all(|a| self.atom_certain(a, &kids, &kid_sets)),
                Mode::Possible => atoms
                    .iter()
                    .any(|a| self.atom_possible(a, &kids, &kid_sets)),
            };
            out[s.ix()] = ok;
        }
        memo.insert(u, out.clone());
        out
    }

    /// Certain embedding of all children into *guaranteed* slots: each
    /// child goes to a distinct entry whose multiplicity guarantees an
    /// occurrence (`1`/`+`) and whose symbol certainly embeds the child.
    fn atom_certain(&self, atom: &SAtom, kids: &[NodeRef], kid_sets: &[Vec<bool>]) -> bool {
        if kids.is_empty() {
            return true;
        }
        let slots: Vec<Sym> = atom
            .entries()
            .iter()
            .filter(|&&(_, m)| m.mandatory())
            .map(|&(c, _)| c)
            .collect();
        if slots.len() < kids.len() {
            return false;
        }
        let mut g = Bipartite::new(kids.len(), slots.len());
        for (j, set) in kid_sets.iter().enumerate() {
            for (i, &slot) in slots.iter().enumerate() {
                if set[slot.ix()] {
                    g.add_edge(j, i);
                }
            }
        }
        g.has_left_perfect_matching()
    }

    /// Possible embedding: children that fit a repeatable label-targeted
    /// entry can always be accommodated; the rest need distinct
    /// single-occurrence slots.
    fn atom_possible(&self, atom: &SAtom, _kids: &[NodeRef], kid_sets: &[Vec<bool>]) -> bool {
        let mut pending: Vec<usize> = Vec::new();
        'kids: for (j, set) in kid_sets.iter().enumerate() {
            for &(c, m) in atom.entries() {
                let unbounded =
                    m.repeatable() && matches!(self.ty().info(c).target, SymTarget::Lab(_));
                if unbounded && set[c.ix()] {
                    continue 'kids; // repeatable slot swallows the child
                }
            }
            pending.push(j);
        }
        if pending.is_empty() {
            return true;
        }
        // Single-occurrence slots: non-repeatable entries, plus
        // node-targeted entries (capacity 1 by Definition 2.7(4)).
        let slots: Vec<Sym> = atom
            .entries()
            .iter()
            .filter(|&&(c, m)| {
                !m.repeatable() || matches!(self.ty().info(c).target, SymTarget::Node(_))
            })
            .map(|&(c, _)| c)
            .collect();
        let mut g = Bipartite::new(pending.len(), slots.len());
        for (pj, &j) in pending.iter().enumerate() {
            for (i, &slot) in slots.iter().enumerate() {
                if kid_sets[j][slot.ix()] {
                    g.add_edge(pj, i);
                }
            }
        }
        g.has_left_perfect_matching()
    }
}

impl IncompleteTree {
    fn prefix_query(&self, t: &DataTree, mode: Mode) -> bool {
        // Precheck: pinned nodes must agree with (λ, ν).
        for u in t.preorder() {
            if let Some(info) = self.node_info(t.nid(u)) {
                if info.label != t.label(u) || info.value != t.value(u) {
                    return false;
                }
            }
        }
        let trimmed = self.trim();
        if trimmed.ty().roots().is_empty() {
            return false; // rep is empty
        }
        let analysis = PrefixAnalysis { it: &trimmed, t };
        let mut memo = HashMap::new();
        let sets = analysis.analyze(t.root(), mode, &mut memo);
        match mode {
            Mode::Possible => trimmed.ty().roots().iter().any(|r| sets[r.ix()]),
            Mode::Certain => trimmed.ty().roots().iter().all(|r| sets[r.ix()]),
        }
    }

    /// Is `t` a prefix (relative to this tree's data nodes) of **some**
    /// tree in `rep(T)`? (Theorem 2.8, PTIME.)
    pub fn possible_prefix(&self, t: &DataTree) -> bool {
        self.prefix_query(t, Mode::Possible)
    }

    /// Is `rep(T)` nonempty and `t` a prefix (relative to this tree's
    /// data nodes) of **every** tree in `rep(T)`? (Theorem 2.8, PTIME.)
    pub fn certain_prefix(&self, t: &DataTree) -> bool {
        self.prefix_query(t, Mode::Certain)
    }
}

#[cfg(test)]
mod tests {
    use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, SymTarget};
    use crate::itree::{IncompleteTree, NodeInfo};
    use iixml_tree::{DataTree, Label, Mult, Nid};
    use iixml_values::{Cond, IntervalSet, Rat};
    use std::collections::BTreeMap;

    /// Example 2.2 incomplete tree: root r (=0) with data child n (a,=0),
    /// optional extra `a != 0` children, all a's may have b children.
    fn example() -> IncompleteTree {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Node(Nid(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let n = ty.add_symbol(
            "n",
            SymTarget::Node(Nid(1)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let a = ty.add_symbol(
            "a",
            SymTarget::Lab(Label(1)),
            Cond::ne(Rat::ZERO).to_intervals(),
        );
        let b = ty.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(n, Mult::One), (a, Mult::Star)])),
        );
        ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        IncompleteTree::new(nodes, ty).unwrap()
    }

    #[test]
    fn data_tree_is_certain_prefix() {
        let it = example();
        let td = it.data_tree().unwrap();
        assert!(it.certain_prefix(&td));
        assert!(it.possible_prefix(&td));
    }

    #[test]
    fn root_alone_is_certain() {
        let it = example();
        let t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        assert!(it.certain_prefix(&t));
    }

    #[test]
    fn extra_a_child_possible_not_certain() {
        let it = example();
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(99), Label(1), Rat::from(5))
            .unwrap();
        assert!(it.possible_prefix(&t), "some world has an extra a=5");
        assert!(!it.certain_prefix(&t), "worlds with no extra a exist");
    }

    #[test]
    fn forbidden_value_not_even_possible() {
        let it = example();
        // Unpinned a-child with value 0: the star type requires != 0, and
        // the data node n (value 0) can absorb it instead!
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(99), Label(1), Rat::ZERO).unwrap();
        assert!(
            it.possible_prefix(&t),
            "embeds onto the data node n (value 0)"
        );
        // But two such children cannot both embed (only one node n, and
        // the star type rejects value 0).
        let mut t2 = t.clone();
        t2.add_child(t2.root(), Nid(98), Label(1), Rat::ZERO)
            .unwrap();
        assert!(!it.possible_prefix(&t2));
    }

    #[test]
    fn pinned_mismatch_fails_fast() {
        let it = example();
        // Node 1 pinned with the wrong label.
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(1), Label(2), Rat::ZERO).unwrap();
        assert!(!it.possible_prefix(&t));
        assert!(!it.certain_prefix(&t));
        // Wrong value on the pinned root.
        let t2 = DataTree::new(Nid(0), Label(0), Rat::from(3));
        assert!(!it.possible_prefix(&t2));
    }

    #[test]
    fn wrong_root_label() {
        let it = example();
        let t = DataTree::new(Nid(7), Label(1), Rat::ZERO);
        assert!(!it.possible_prefix(&t));
    }

    #[test]
    fn empty_rep_nothing_is_certain_or_possible() {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        // Root requires an unproductive child.
        let r = ty.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        let x = ty.add_symbol("x", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(x, Mult::One)])));
        ty.set_mu(x, Disjunction::single(SAtom::new(vec![(x, Mult::One)])));
        ty.add_root(r);
        let it = IncompleteTree::new(nodes, ty).unwrap();
        assert!(it.is_empty());
        let t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        assert!(!it.possible_prefix(&t));
        assert!(!it.certain_prefix(&t));
    }

    #[test]
    fn certain_needs_forced_values() {
        // root -> x* with cond(x) = (0, 10): a tree with x=5 is possible
        // but never certain (value not forced, and x not mandatory).
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Lab(Label(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let x = ty.add_symbol(
            "x",
            SymTarget::Lab(Label(1)),
            Cond::gt(Rat::ZERO)
                .and(Cond::lt(Rat::from(10)))
                .to_intervals(),
        );
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(x, Mult::Star)])));
        ty.set_mu(x, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(BTreeMap::new(), ty).unwrap();
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(1), Label(1), Rat::from(5))
            .unwrap();
        assert!(it.possible_prefix(&t));
        assert!(!it.certain_prefix(&t));
    }

    #[test]
    fn certain_with_mandatory_forced_child() {
        // root -> x (exactly one, value forced to 7).
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Lab(Label(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let x = ty.add_symbol(
            "x",
            SymTarget::Lab(Label(1)),
            Cond::eq(Rat::from(7)).to_intervals(),
        );
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(x, Mult::One)])));
        ty.set_mu(x, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(BTreeMap::new(), ty).unwrap();
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(1), Label(1), Rat::from(7))
            .unwrap();
        assert!(it.certain_prefix(&t));
        // Two x children: not even possible (exactly one).
        let mut t2 = t.clone();
        t2.add_child(t2.root(), Nid(2), Label(1), Rat::from(7))
            .unwrap();
        assert!(!it.possible_prefix(&t2));
    }

    #[test]
    fn certain_quantifies_over_all_disjuncts() {
        // root -> x | eps : the x child appears only in some worlds.
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Lab(Label(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let x = ty.add_symbol(
            "x",
            SymTarget::Lab(Label(1)),
            Cond::eq(Rat::from(7)).to_intervals(),
        );
        ty.set_mu(
            r,
            Disjunction(vec![SAtom::new(vec![(x, Mult::One)]), SAtom::empty()]),
        );
        ty.set_mu(x, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(BTreeMap::new(), ty).unwrap();
        let mut t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        t.add_child(t.root(), Nid(1), Label(1), Rat::from(7))
            .unwrap();
        assert!(it.possible_prefix(&t));
        assert!(!it.certain_prefix(&t), "the eps disjunct has no x child");
    }

    #[test]
    fn multiple_roots_certain_needs_all() {
        let mut ty = ConditionalTreeType::new();
        let r1 = ty.add_symbol(
            "r1",
            SymTarget::Lab(Label(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let r2 = ty.add_symbol(
            "r2",
            SymTarget::Lab(Label(1)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        ty.set_mu(r1, Disjunction::leaf());
        ty.set_mu(r2, Disjunction::leaf());
        ty.add_root(r1);
        ty.add_root(r2);
        let it = IncompleteTree::new(BTreeMap::new(), ty).unwrap();
        let t = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        // Possible: some world has a label-0 root.
        assert!(it.possible_prefix(&t));
        // Not certain: worlds rooted r2 have label 1.
        assert!(!it.certain_prefix(&t));
    }
}
