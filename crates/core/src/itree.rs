//! Incomplete trees (Definition 2.7): the paper's representation system
//! for XML with incomplete information.
//!
//! An incomplete tree `T = (N, λ, ν, τ)` couples a finite set of
//! *instantiated data nodes* (with fixed labels and values) with a
//! conditional tree type over `N ∪ Σ` describing both the known prefix
//! and the missing information. `rep(T)` is the set of complete data
//! trees consistent with it.
//!
//! Provided here:
//! * construction and normalization ([`IncompleteTree::new`]);
//! * `rep` emptiness, trimming, and witness construction;
//! * exact membership `T ∈ rep(T)` ([`IncompleteTree::contains`]) via
//!   circulation feasibility — the testing backbone of this repository;
//! * the data tree `T_d` (the instantiated prefix);
//! * well-formedness (Definition 2.7 item 4) and unambiguity
//!   (Definition 3.1) checks.

use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget};
use iixml_tree::flow::Circulation;
use iixml_tree::{DataTree, Label, Mult, Nid, NidGen, NodeRef};
use iixml_values::{IntervalSet, Rat};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The label and value of an instantiated data node (`λ(n)`, `ν(n)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeInfo {
    /// The node's element label.
    pub label: Label,
    /// The node's data value.
    pub value: Rat,
}

/// Errors constructing or validating incomplete trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItreeError {
    /// A symbol targets a data node absent from `N`.
    UnknownNode(Nid),
    /// A data node could occur more than once in some represented tree
    /// (violates Definition 2.7(4)).
    DuplicatedNode(Nid),
    /// A node-targeted symbol can occur under a label-targeted symbol
    /// (violates Definition 2.7(4): parents of data nodes are data
    /// nodes).
    NodeUnderLabel(Nid),
    /// Two incomplete trees disagree on a shared node's label or value.
    IncompatibleNode(Nid),
    /// An answer shipped a node without provenance (which query-pattern
    /// node it matched) — the signature of a truncated or fabricated
    /// answer from an unreliable source.
    MissingProvenance(Nid),
}

impl fmt::Display for ItreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItreeError::UnknownNode(n) => write!(f, "symbol targets unknown data node {n}"),
            ItreeError::DuplicatedNode(n) => {
                write!(f, "data node {n} may occur twice in a represented tree")
            }
            ItreeError::NodeUnderLabel(n) => {
                write!(f, "data node {n} may occur under a non-data node")
            }
            ItreeError::IncompatibleNode(n) => {
                write!(f, "incompatible label/value for shared node {n}")
            }
            ItreeError::MissingProvenance(n) => {
                write!(f, "answer node {n} carries no match provenance")
            }
        }
    }
}

impl std::error::Error for ItreeError {}

/// An incomplete tree `(N, λ, ν, τ)`.
#[derive(Clone, Debug)]
pub struct IncompleteTree {
    nodes: BTreeMap<Nid, NodeInfo>,
    ty: ConditionalTreeType,
}

impl IncompleteTree {
    /// Creates an incomplete tree, *normalizing* node-targeted symbols:
    /// their conditions are intersected with the singleton `{ν(n)}`
    /// (represented trees assign exactly `ν(n)` to node `n`), so that all
    /// downstream reasoning can treat conditions uniformly.
    pub fn new(
        nodes: BTreeMap<Nid, NodeInfo>,
        mut ty: ConditionalTreeType,
    ) -> Result<IncompleteTree, ItreeError> {
        for s in ty.syms().collect::<Vec<_>>() {
            if let SymTarget::Node(n) = ty.info(s).target {
                let info = *nodes.get(&n).ok_or(ItreeError::UnknownNode(n))?;
                let narrowed = ty.info(s).cond.intersect(&IntervalSet::eq(info.value));
                ty.info_mut(s).cond = narrowed;
            }
        }
        Ok(IncompleteTree { nodes, ty })
    }

    /// The incomplete tree representing *all* data trees over the given
    /// labels — the zero-knowledge starting point of a Refine chain.
    pub fn universal(labels: &[Label], names: &[&str]) -> IncompleteTree {
        let mut ty = ConditionalTreeType::new();
        let syms: Vec<Sym> = labels
            .iter()
            .zip(names)
            .map(|(&l, &n)| ty.add_symbol(n, SymTarget::Lab(l), IntervalSet::all()))
            .collect();
        let all_star = SAtom::new(syms.iter().map(|&s| (s, Mult::Star)).collect());
        for &s in &syms {
            ty.set_mu(s, Disjunction::single(all_star.clone()));
            ty.add_root(s);
        }
        IncompleteTree {
            nodes: BTreeMap::new(),
            ty,
        }
    }

    /// The data nodes `N` with their labels and values.
    pub fn nodes(&self) -> &BTreeMap<Nid, NodeInfo> {
        &self.nodes
    }

    /// Looks up a data node.
    pub fn node_info(&self, n: Nid) -> Option<NodeInfo> {
        self.nodes.get(&n).copied()
    }

    /// The underlying conditional tree type.
    pub fn ty(&self) -> &ConditionalTreeType {
        &self.ty
    }

    /// Size measure (see [`ConditionalTreeType::size`]) plus data nodes.
    pub fn size(&self) -> usize {
        self.nodes.len() + self.ty.size()
    }

    /// Is `rep(T)` empty?
    pub fn is_empty(&self) -> bool {
        self.ty.is_empty()
    }

    /// Removes useless symbols (preserving `rep` exactly) and drops data
    /// nodes no longer mentioned by any symbol.
    pub fn trim(&self) -> IncompleteTree {
        let (ty, _) = self.ty.trim();
        let mut nodes = BTreeMap::new();
        for s in ty.syms() {
            if let SymTarget::Node(n) = ty.info(s).target {
                if let Some(&info) = self.nodes.get(&n) {
                    nodes.insert(n, info);
                }
            }
        }
        IncompleteTree { nodes, ty }
    }

    /// A concrete member of `rep(T)`, or `None` if empty. Fresh ids for
    /// non-instantiated nodes come from `gen` (callers should start it
    /// above all instantiated ids).
    pub fn witness(&self, gen: &mut NidGen) -> Option<DataTree> {
        let mut t = self.ty.witness(gen)?;
        // Patch labels of instantiated nodes (the type layer stores a
        // placeholder label for node-targeted symbols).
        for r in t.preorder() {
            if let Some(info) = self.nodes.get(&t.nid(r)) {
                t.set_label(r, info.label);
                t.set_value(r, info.value);
            }
        }
        Some(t)
    }

    /// Exact membership test: is the concrete data tree `t` in `rep(T)`?
    ///
    /// A tree is represented iff its nodes can be assigned specialized
    /// symbols such that the root gets a root symbol, labels/values/ids
    /// are consistent (nodes carrying an id in `N` must be typed by a
    /// symbol targeting exactly that node, others by label-targeted
    /// symbols), and each node's children satisfy one disjunct of its
    /// symbol's µ. The per-node children check is a circulation
    /// feasibility problem (one symbol per child, per-symbol counts
    /// within the multiplicity bounds).
    pub fn contains(&self, t: &DataTree) -> bool {
        let mut memo: HashMap<(NodeRef, Sym), bool> = HashMap::new();
        self.ty
            .roots()
            .iter()
            .any(|&r| self.ok(t, t.root(), r, &mut memo))
    }

    fn ok(
        &self,
        t: &DataTree,
        u: NodeRef,
        s: Sym,
        memo: &mut HashMap<(NodeRef, Sym), bool>,
    ) -> bool {
        if let Some(&r) = memo.get(&(u, s)) {
            return r;
        }
        memo.insert((u, s), false); // guard (trees are acyclic)
        let r = self.ok_inner(t, u, s, memo);
        memo.insert((u, s), r);
        r
    }

    fn ok_inner(
        &self,
        t: &DataTree,
        u: NodeRef,
        s: Sym,
        memo: &mut HashMap<(NodeRef, Sym), bool>,
    ) -> bool {
        let info = self.ty.info(s);
        match info.target {
            SymTarget::Lab(l) => {
                if t.label(u) != l || self.nodes.contains_key(&t.nid(u)) {
                    return false;
                }
            }
            SymTarget::Node(n) => {
                let Some(ni) = self.nodes.get(&n) else {
                    return false;
                };
                if t.nid(u) != n || t.label(u) != ni.label {
                    return false;
                }
            }
        }
        if !info.cond.contains(t.value(u)) {
            return false;
        }
        let kids = t.children(u).to_vec();
        self.ty
            .mu(s)
            .0
            .iter()
            .any(|atom| self.atom_feasible(t, &kids, atom, memo))
    }

    fn atom_feasible(
        &self,
        t: &DataTree,
        kids: &[NodeRef],
        atom: &SAtom,
        memo: &mut HashMap<(NodeRef, Sym), bool>,
    ) -> bool {
        let m = kids.len();
        let k = atom.len();
        if m == 0 {
            // Feasible iff no entry is mandatory.
            return atom.entries().iter().all(|&(_, mu)| !mu.mandatory());
        }
        // Vertices: 0 = source/sink hub, 1..=m children, m+1..=m+k slots.
        let source = 0;
        let sink = m + k + 1;
        let mut c = Circulation::new(m + k + 2);
        for (j, &kid) in kids.iter().enumerate() {
            c.add_edge(source, 1 + j, 1, 1);
            let mut any = false;
            for (i, &(sym, _)) in atom.entries().iter().enumerate() {
                if self.ok(t, kid, sym, memo) {
                    c.add_edge(1 + j, 1 + m + i, 0, 1);
                    any = true;
                }
            }
            if !any {
                return false; // child cannot be typed at all
            }
        }
        for (i, &(_, mu)) in atom.entries().iter().enumerate() {
            let lo = if mu.mandatory() { 1 } else { 0 };
            let hi = if mu.repeatable() { m as i64 } else { 1 };
            c.add_edge(1 + m + i, sink, lo, hi);
        }
        c.add_edge(sink, source, 0, m as i64);
        c.feasible()
    }

    /// The data tree `T_d`: the instantiated prefix formed by the data
    /// nodes, reconstructed from the type structure (each data node's
    /// parent is the data node under whose symbol it occurs). Returns
    /// `None` when `N` is empty or the structure is inconsistent.
    pub fn data_tree(&self) -> Option<DataTree> {
        if self.nodes.is_empty() {
            return None;
        }
        let trimmed = self.trim();
        let ty = &trimmed.ty;
        let mut parent: HashMap<Nid, Option<Nid>> = HashMap::new();
        for s in ty.syms() {
            let parent_node = match ty.info(s).target {
                SymTarget::Node(n) => Some(n),
                SymTarget::Lab(_) => None,
            };
            for atom in &ty.mu(s).0 {
                for &(c, _) in atom.entries() {
                    if let SymTarget::Node(child) = ty.info(c).target {
                        match parent.get(&child) {
                            Some(&p) if p != parent_node => return None,
                            _ => {
                                parent.insert(child, parent_node);
                            }
                        }
                    }
                }
            }
        }
        // Roots: data nodes appearing as root symbols, or with no parent
        // edge recorded.
        let mut root: Option<Nid> = None;
        for &n in trimmed.nodes.keys() {
            let is_root = match parent.get(&n) {
                None | Some(None) => true,
                Some(Some(_)) => false,
            };
            if is_root {
                if root.is_some() {
                    return None; // forest, not a tree
                }
                root = Some(n);
            }
        }
        let root = root?;
        let ri = trimmed.nodes.get(&root)?;
        let mut out = DataTree::new(root, ri.label, ri.value);
        // Insert children breadth-first.
        let mut frontier = vec![root];
        let mut remaining: Vec<(Nid, Nid)> = parent
            .iter()
            .filter_map(|(&c, &p)| p.map(|p| (c, p)))
            .collect();
        remaining.sort();
        while let Some(p) = frontier.pop() {
            // Infallible: `p` entered the frontier only after being added
            // to `out` (the root at construction, others via add_child).
            let pr = out.by_nid(p).expect("parent inserted before children");
            for &(c, pp) in &remaining {
                if pp == p {
                    let ci = trimmed.nodes.get(&c)?;
                    out.add_child(pr, c, ci.label, ci.value).ok()?;
                    frontier.push(c);
                }
            }
        }
        if out.len() != trimmed.nodes.len() {
            return None; // disconnected data nodes
        }
        Some(out)
    }

    /// Checks Definition 2.7 item 4: in every represented tree, each data
    /// node occurs at most once, and parents of data nodes are data
    /// nodes.
    pub fn well_formed(&self) -> Result<(), ItreeError> {
        let trimmed = self.trim();
        let ty = &trimmed.ty;
        // (b) structural parent check on the trimmed (all-useful) type.
        for s in ty.syms() {
            if let SymTarget::Lab(_) = ty.info(s).target {
                for atom in &ty.mu(s).0 {
                    for &(c, _) in atom.entries() {
                        if let SymTarget::Node(n) = ty.info(c).target {
                            return Err(ItreeError::NodeUnderLabel(n));
                        }
                    }
                }
            }
        }
        // (a) occurrence counting, capped at 2. occ[s][n-index] = max
        // occurrences of node n in any tree rooted at a node typed s.
        let nids: Vec<Nid> = trimmed.nodes.keys().copied().collect();
        let idx: HashMap<Nid, usize> = nids.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let ns = ty.sym_count();
        let nn = nids.len();
        let mut occ = vec![vec![0u8; nn]; ns];
        loop {
            let mut changed = false;
            for s in ty.syms() {
                let own: Option<usize> = match ty.info(s).target {
                    SymTarget::Node(n) => idx.get(&n).copied(),
                    SymTarget::Lab(_) => None,
                };
                #[allow(clippy::needless_range_loop)]
                for ni in 0..nn {
                    // Max over atoms of the sum over entries.
                    let mut best = 0u16;
                    for atom in &ty.mu(s).0 {
                        let mut total: u16 = 0;
                        for &(c, m) in atom.entries() {
                            let per = occ[c.ix()][ni] as u16;
                            let copies: u16 = if m.repeatable() { 2 } else { 1 };
                            total = (total + per * copies).min(2);
                        }
                        best = best.max(total);
                    }
                    let self_occ = u16::from(own == Some(ni));
                    let v = ((best + self_occ).min(2)) as u8;
                    if v > occ[s.ix()][ni] {
                        occ[s.ix()][ni] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for r in ty.roots() {
            for (ni, &n) in nids.iter().enumerate() {
                if occ[r.ix()][ni] >= 2 {
                    return Err(ItreeError::DuplicatedNode(n));
                }
            }
        }
        Ok(())
    }

    /// Pretty-prints the incomplete tree in the paper's Figure 8/9
    /// spirit: the known data tree first, then the specialized types
    /// describing the missing information.
    pub fn display<'a>(&'a self, alpha: &'a iixml_tree::Alphabet) -> DisplayItree<'a> {
        DisplayItree { it: self, alpha }
    }

    /// Checks unambiguity (Definition 3.1): (1) data-node symbols have
    /// multiplicity 1 and all others ⋆; (2) distinct ⋆-specializations of
    /// the same label in one atom have mutually exclusive conditions;
    /// (3) a label with multiple ⋆-specializations in one atom also
    /// appears as the label of some data-node entry of that atom.
    pub fn is_unambiguous(&self) -> bool {
        let ty = &self.ty;
        for s in ty.syms() {
            for atom in &ty.mu(s).0 {
                for &(c, m) in atom.entries() {
                    let is_node = matches!(ty.info(c).target, SymTarget::Node(_));
                    match (is_node, m) {
                        (true, Mult::One) | (false, Mult::Star) => {}
                        _ => return false,
                    }
                }
                // Group ⋆ entries by label.
                let mut by_label: HashMap<Label, Vec<Sym>> = HashMap::new();
                for &(c, _) in atom.entries() {
                    if let SymTarget::Lab(l) = ty.info(c).target {
                        by_label.entry(l).or_default().push(c);
                    }
                }
                for (l, group) in by_label {
                    if group.len() < 2 {
                        continue;
                    }
                    // (2) pairwise exclusive conditions, or (3) a
                    // data-node entry with the same label exists. (The
                    // paper's Figure 8 uses specializations that are
                    // distinguished by subtree structure rather than by
                    // their own value condition, so (3) acts as the
                    // alternative to (2).)
                    let exclusive = (0..group.len()).all(|i| {
                        (i + 1..group.len())
                            .all(|j| !ty.info(group[i]).cond.overlaps(&ty.info(group[j]).cond))
                    });
                    let has_node = atom.entries().iter().any(|&(c, _)| {
                        matches!(ty.info(c).target, SymTarget::Node(n)
                            if self.nodes.get(&n).map(|i| i.label) == Some(l))
                    });
                    if !exclusive && !has_node {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Helper returned by [`IncompleteTree::display`].
pub struct DisplayItree<'a> {
    it: &'a IncompleteTree,
    alpha: &'a iixml_tree::Alphabet,
}

impl fmt::Display for DisplayItree<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "known data tree:")?;
        match self.it.data_tree() {
            Some(td) => write!(f, "{}", td.display(self.alpha))?,
            None => writeln!(f, "  (no data nodes)")?,
        }
        writeln!(f, "specialized types:")?;
        write!(f, "{}", self.it.ty().display(self.alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_values::Cond;

    /// The incomplete tree of Example 2.2 / Figure 7 (left):
    /// data nodes r (root, =0) and n (a, =0); r may have extra `a ≠ 0`
    /// children; all a's and n may have b children.
    pub fn example_2_2() -> (IncompleteTree, [Label; 3]) {
        let root_l = Label(0);
        let a_l = Label(1);
        let b_l = Label(2);
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: root_l,
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: a_l,
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Node(Nid(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let n = ty.add_symbol(
            "n",
            SymTarget::Node(Nid(1)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let a = ty.add_symbol("a", SymTarget::Lab(a_l), Cond::ne(Rat::ZERO).to_intervals());
        let b = ty.add_symbol("b", SymTarget::Lab(b_l), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(n, Mult::One), (a, Mult::Star)])),
        );
        ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(nodes, ty).unwrap();
        (it, [root_l, a_l, b_l])
    }

    #[test]
    fn example_2_2_basics() {
        let (it, _) = example_2_2();
        assert!(!it.is_empty());
        assert!(it.well_formed().is_ok());
        assert!(it.is_unambiguous());
        let td = it.data_tree().unwrap();
        assert_eq!(td.len(), 2);
        assert_eq!(td.nid(td.root()), Nid(0));
        assert_eq!(td.nid(td.children(td.root())[0]), Nid(1));
    }

    #[test]
    fn membership_examples() {
        let (it, [root_l, a_l, b_l]) = example_2_2();
        // Minimal world: r with child n.
        let mut t = DataTree::new(Nid(0), root_l, Rat::ZERO);
        t.add_child(t.root(), Nid(1), a_l, Rat::ZERO).unwrap();
        assert!(it.contains(&t));
        // Add an extra a != 0 child and b grandchildren: still in rep.
        let mut t2 = t.clone();
        let extra = t2.add_child(t2.root(), Nid(50), a_l, Rat::from(7)).unwrap();
        t2.add_child(extra, Nid(51), b_l, Rat::from(3)).unwrap();
        let n_ref = t2.by_nid(Nid(1)).unwrap();
        t2.add_child(n_ref, Nid(52), b_l, Rat::from(4)).unwrap();
        assert!(it.contains(&t2));
        // Extra `a` child with value 0 violates cond(a) != 0.
        let mut t3 = t.clone();
        t3.add_child(t3.root(), Nid(60), a_l, Rat::ZERO).unwrap();
        assert!(!it.contains(&t3));
        // Missing the mandatory data node n.
        let t4 = DataTree::new(Nid(0), root_l, Rat::ZERO);
        assert!(!it.contains(&t4));
        // A tree whose root is a fresh node (not node 0) cannot be typed
        // by the node-targeted root symbol.
        let mut t5 = DataTree::new(Nid(99), root_l, Rat::ZERO);
        t5.add_child(t5.root(), Nid(1), a_l, Rat::ZERO).unwrap();
        assert!(!it.contains(&t5));
        // Wrong value at node n.
        let mut t6 = DataTree::new(Nid(0), root_l, Rat::ZERO);
        t6.add_child(t6.root(), Nid(1), a_l, Rat::from(5)).unwrap();
        assert!(!it.contains(&t6));
    }

    #[test]
    fn witness_is_member() {
        let (it, _) = example_2_2();
        let w = it.witness(&mut NidGen::starting_at(1000)).unwrap();
        assert!(it.contains(&w), "witness must be in rep");
        // Witness contains both data nodes with patched labels.
        assert_eq!(w.len(), 2);
        assert_eq!(w.label(w.root()), Label(0));
    }

    #[test]
    fn universal_accepts_everything() {
        let labels = [Label(0), Label(1)];
        let it = IncompleteTree::universal(&labels, &["r", "a"]);
        let mut t = DataTree::new(Nid(0), Label(1), Rat::from(42));
        let c = t.add_child(t.root(), Nid(1), Label(0), Rat::ZERO).unwrap();
        t.add_child(c, Nid(2), Label(1), Rat::from(-3)).unwrap();
        assert!(it.contains(&t));
        assert!(!it.is_empty());
        assert!(it.well_formed().is_ok());
        assert!(it.data_tree().is_none());
    }

    #[test]
    fn ill_formed_duplicate_node() {
        // root -> n n (two node entries for the same nid via two symbols
        // — modeled as one symbol with mult Plus, allowing 2 copies).
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        let n = ty.add_symbol("n", SymTarget::Node(Nid(1)), IntervalSet::all());
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(n, Mult::Plus)])));
        ty.set_mu(n, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(nodes, ty).unwrap();
        assert_eq!(it.well_formed(), Err(ItreeError::DuplicatedNode(Nid(1))));
    }

    #[test]
    fn ill_formed_node_under_label() {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Lab(Label(0)), IntervalSet::all());
        let n = ty.add_symbol("n", SymTarget::Node(Nid(1)), IntervalSet::all());
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(n, Mult::One)])));
        ty.set_mu(n, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(nodes, ty).unwrap();
        assert_eq!(it.well_formed(), Err(ItreeError::NodeUnderLabel(Nid(1))));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Node(Nid(7)), IntervalSet::all());
        ty.set_mu(r, Disjunction::leaf());
        ty.add_root(r);
        assert_eq!(
            IncompleteTree::new(BTreeMap::new(), ty).err(),
            Some(ItreeError::UnknownNode(Nid(7)))
        );
    }

    #[test]
    fn normalization_narrows_node_conditions() {
        // Node value 5 but symbol condition < 3: the symbol becomes
        // unsatisfiable, so rep is empty.
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::from(5),
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Node(Nid(0)),
            Cond::lt(Rat::from(3)).to_intervals(),
        );
        ty.set_mu(r, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(nodes, ty).unwrap();
        assert!(it.is_empty());
    }

    #[test]
    fn ambiguity_detection() {
        let (it, _) = example_2_2();
        assert!(it.is_unambiguous());
        // Two star specializations of `a` with overlapping conditions.
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(2),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        let n1 = ty.add_symbol("n1", SymTarget::Node(Nid(1)), IntervalSet::all());
        let a1 = ty.add_symbol(
            "a1",
            SymTarget::Lab(Label(1)),
            Cond::lt(Rat::from(5)).to_intervals(),
        );
        let a2 = ty.add_symbol(
            "a2",
            SymTarget::Lab(Label(1)),
            Cond::gt(Rat::ZERO).to_intervals(),
        );
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![
                (n1, Mult::One),
                (a1, Mult::Star),
                (a2, Mult::Star),
            ])),
        );
        for s in [n1, a1, a2] {
            ty.set_mu(s, Disjunction::leaf());
        }
        ty.add_root(r);
        let it2 = IncompleteTree::new(nodes, ty).unwrap();
        // Conditions (−∞,5) and (0,∞) overlap and no data node carries
        // label 1 -> ambiguous.
        assert!(!it2.is_unambiguous());
        // Node entries with multiplicity other than One violate (1).
        let mut ty2 = ConditionalTreeType::new();
        let r2 = ty2.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        let n2 = ty2.add_symbol("n1", SymTarget::Node(Nid(1)), IntervalSet::all());
        ty2.set_mu(r2, Disjunction::single(SAtom::new(vec![(n2, Mult::Opt)])));
        ty2.set_mu(n2, Disjunction::leaf());
        ty2.add_root(r2);
        let mut nodes2 = BTreeMap::new();
        nodes2.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        nodes2.insert(
            Nid(1),
            NodeInfo {
                label: Label(2),
                value: Rat::ZERO,
            },
        );
        let it3 = IncompleteTree::new(nodes2, ty2).unwrap();
        assert!(!it3.is_unambiguous());
    }

    #[test]
    fn display_shows_both_parts() {
        let (it, _) = example_2_2();
        let alpha = iixml_tree::Alphabet::from_names(["root", "a", "b"]);
        let s = it.display(&alpha).to_string();
        assert!(s.contains("known data tree:"));
        assert!(s.contains("root n0 = 0"));
        assert!(s.contains("specialized types:"));
        assert!(
            s.contains("(-inf,0) u (0,+inf)"),
            "the star-a condition (!= 0 in interval form) is visible"
        );
    }

    #[test]
    fn trim_drops_unreferenced_nodes() {
        let (it, _) = example_2_2();
        // Add an unreachable symbol targeting a new node.
        let mut nodes = it.nodes.clone();
        nodes.insert(
            Nid(77),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        let mut ty = it.ty.clone();
        let orphan = ty.add_symbol("orphan", SymTarget::Node(Nid(77)), IntervalSet::all());
        ty.set_mu(orphan, Disjunction::leaf());
        let it2 = IncompleteTree::new(nodes, ty).unwrap();
        let trimmed = it2.trim();
        assert!(!trimmed.nodes.contains_key(&Nid(77)));
        assert_eq!(trimmed.nodes.len(), 2);
    }
}
