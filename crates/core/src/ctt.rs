//! Conditional tree types (Section 2).
//!
//! A conditional tree type extends a tree type three ways: right-hand
//! sides are *disjunctions* of multiplicity atoms, every specialized
//! symbol carries a condition on data values, and a *specialization
//! mapping* σ : Σ′ → Σ ∪ N lets one element name (or one instantiated
//! data node) have several types depending on context.
//!
//! [`ConditionalTreeType`] stores the specialized alphabet Σ′ as an arena
//! of [`SymbolInfo`]s. Symbols target either an element label ([`SymTarget::Lab`])
//! or an instantiated data node ([`SymTarget::Node`]) — the latter is how
//! incomplete trees embed their data nodes into the type (Definition 2.7:
//! "instantiated nodes are also viewed as labels").
//!
//! Key algorithms here:
//! * emptiness of `rep` ([`ConditionalTreeType::is_empty`]) — the PTIME
//!   fixpoint of Lemma 2.5;
//! * useless-symbol analysis and removal ([`ConditionalTreeType::trim`])
//!   — Corollary 2.6;
//! * witness construction ([`ConditionalTreeType::witness`]) — a concrete
//!   member of `rep`, used pervasively by tests.

use iixml_tree::{Alphabet, DataTree, Label, Mult, Nid, NidGen};
use iixml_values::IntervalSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A specialized symbol (an element of the specialized alphabet Σ′).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(pub u32);

impl Sym {
    /// Arena index.
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// What a specialized symbol maps to under σ: an element label in Σ, or
/// an instantiated data node in N.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SymTarget {
    /// σ(s) is an element label.
    Lab(Label),
    /// σ(s) is an instantiated data node.
    Node(Nid),
}

/// Metadata of one specialized symbol.
#[derive(Clone, Debug)]
pub struct SymbolInfo {
    /// Human-readable name for display/debugging (e.g. `product2b`).
    pub name: String,
    /// The specialization target σ(s).
    pub target: SymTarget,
    /// The condition on data values of nodes typed by this symbol, in
    /// interval normal form. For node-targeted symbols this is already
    /// intersected with the singleton `{ν(n)}` by [`crate::IncompleteTree`].
    pub cond: IntervalSet,
}

/// A multiplicity atom over specialized symbols: `s1^ω1 … sk^ωk` with
/// distinct symbols, kept sorted.
///
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SAtom {
    entries: Vec<(Sym, Mult)>,
}

impl SAtom {
    /// The empty atom ε (leaf type).
    pub fn empty() -> SAtom {
        SAtom::default()
    }

    /// Builds an atom, sorting entries.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a symbol repeats.
    pub fn new(mut entries: Vec<(Sym, Mult)>) -> SAtom {
        entries.sort_by_key(|&(s, _)| s);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate symbol in multiplicity atom"
        );
        SAtom { entries }
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(Sym, Mult)] {
        &self.entries
    }

    /// The multiplicity of a symbol in the atom, if present.
    pub fn mult(&self, s: Sym) -> Option<Mult> {
        self.entries
            .binary_search_by_key(&s, |&(x, _)| x)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is this the ε atom?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A disjunction of multiplicity atoms (a right-hand side `α1 ∨ … ∨ αm`).
/// An empty disjunction is unsatisfiable (no arrangement of children is
/// allowed, not even none — use `[SAtom::empty()]` for leaf types).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Disjunction(pub Vec<SAtom>);

impl Disjunction {
    /// Just the ε atom: the symbol types leaves only.
    pub fn leaf() -> Disjunction {
        Disjunction(vec![SAtom::empty()])
    }

    /// A single-atom disjunction.
    pub fn single(atom: SAtom) -> Disjunction {
        Disjunction(vec![atom])
    }

    /// The atoms.
    pub fn atoms(&self) -> &[SAtom] {
        &self.0
    }
}

/// A conditional tree type `(Σ′, R, µ, cond, σ, Σ ∪ N)`.
///
/// Right-hand sides are stored behind `Arc` so structurally shared µ's
/// (e.g. the `τ_a⋆ … τ_z⋆` anything-goes atom every `τ_a`/`τ̄_m` symbol
/// of Lemma 3.2 points to) cost one allocation total instead of one per
/// symbol — see [`ConditionalTreeType::set_mu_shared`]. Cloning a whole
/// type (the Refiner does so per step) then bumps refcounts instead of
/// deep-copying every atom list.
#[derive(Clone, Debug, Default)]
pub struct ConditionalTreeType {
    symbols: Vec<SymbolInfo>,
    mu: Vec<Arc<Disjunction>>,
    roots: Vec<Sym>,
}

/// The shared default right-hand side (unsatisfiable empty disjunction).
fn unset_mu() -> Arc<Disjunction> {
    static EMPTY: OnceLock<Arc<Disjunction>> = OnceLock::new();
    EMPTY
        .get_or_init(|| Arc::new(Disjunction::default()))
        .clone()
}

impl ConditionalTreeType {
    /// Creates an empty type (no symbols, no roots; `rep` is empty).
    pub fn new() -> ConditionalTreeType {
        ConditionalTreeType::default()
    }

    /// Adds a symbol with the given metadata; its µ defaults to the
    /// unsatisfiable empty disjunction until [`set_mu`] is called.
    ///
    /// [`set_mu`]: ConditionalTreeType::set_mu
    pub fn add_symbol(
        &mut self,
        name: impl Into<String>,
        target: SymTarget,
        cond: IntervalSet,
    ) -> Sym {
        let s = Sym(self.symbols.len() as u32);
        self.symbols.push(SymbolInfo {
            name: name.into(),
            target,
            cond,
        });
        self.mu.push(unset_mu());
        s
    }

    /// Sets the right-hand side of a symbol.
    pub fn set_mu(&mut self, s: Sym, d: Disjunction) {
        self.mu[s.ix()] = Arc::new(d);
    }

    /// Sets the right-hand side of a symbol to an already-shared
    /// disjunction (hash-consing hook: many symbols pointing to the same
    /// µ share one allocation).
    pub fn set_mu_shared(&mut self, s: Sym, d: Arc<Disjunction>) {
        self.mu[s.ix()] = d;
    }

    /// The right-hand side of a symbol as a shareable handle (clone is a
    /// refcount bump).
    pub fn mu_shared(&self, s: Sym) -> Arc<Disjunction> {
        self.mu[s.ix()].clone()
    }

    /// Declares a root symbol.
    pub fn add_root(&mut self, s: Sym) {
        if !self.roots.contains(&s) {
            self.roots.push(s);
        }
    }

    /// Replaces the root set.
    pub fn set_roots(&mut self, roots: Vec<Sym>) {
        self.roots = roots;
    }

    /// Number of symbols in Σ′.
    pub fn sym_count(&self) -> usize {
        self.symbols.len()
    }

    /// Iterates over all symbols.
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.symbols.len() as u32).map(Sym)
    }

    /// Metadata of a symbol.
    pub fn info(&self, s: Sym) -> &SymbolInfo {
        &self.symbols[s.ix()]
    }

    /// Mutable metadata of a symbol.
    pub fn info_mut(&mut self, s: Sym) -> &mut SymbolInfo {
        &mut self.symbols[s.ix()]
    }

    /// The right-hand side of a symbol.
    pub fn mu(&self, s: Sym) -> &Disjunction {
        &self.mu[s.ix()]
    }

    /// The root symbols.
    pub fn roots(&self) -> &[Sym] {
        &self.roots
    }

    /// A size measure: symbols plus total multiplicity-atom entries.
    /// This is the quantity that blows up exponentially in Example 3.2
    /// and stays polynomial for conjunctive trees (Corollary 3.9).
    pub fn size(&self) -> usize {
        self.symbols.len()
            + self
                .mu
                .iter()
                .map(|d| d.0.iter().map(|a| a.len() + 1).sum::<usize>())
                .sum::<usize>()
    }

    /// Computes the set of *productive* symbols: `s` is productive iff
    /// some finite tree can be rooted at a node typed `s`. This is the
    /// PTIME emptiness fixpoint of Lemma 2.5 (the analogue of
    /// context-free grammar emptiness).
    pub fn productive(&self) -> Vec<bool> {
        let n = self.symbols.len();
        let mut prod = vec![false; n];
        loop {
            let mut changed = false;
            for s in 0..n {
                if prod[s] || self.symbols[s].cond.is_empty() {
                    continue;
                }
                let ok = self.mu[s].0.iter().any(|atom| {
                    atom.entries()
                        .iter()
                        .all(|&(c, m)| !m.mandatory() || prod[c.ix()])
                });
                if ok {
                    prod[s] = true;
                    changed = true;
                }
            }
            if !changed {
                return prod;
            }
        }
    }

    /// Is `rep` empty? (Lemma 2.5: PTIME-complete.)
    pub fn is_empty(&self) -> bool {
        let prod = self.productive();
        !self.roots.iter().any(|r| prod[r.ix()])
    }

    /// Computes the *useful* symbols (Corollary 2.6): productive symbols
    /// that can actually occur in some accepted tree. Reachability is the
    /// standard grammar argument: a productive symbol occurring (with a
    /// realizable atom) under a reachable symbol is reachable.
    pub fn useful(&self) -> Vec<bool> {
        let prod = self.productive();
        let n = self.symbols.len();
        let mut reach = vec![false; n];
        let mut stack: Vec<usize> = self
            .roots
            .iter()
            .filter(|r| prod[r.ix()])
            .map(|r| r.ix())
            .collect();
        for &s in &stack {
            reach[s] = true;
        }
        while let Some(s) = stack.pop() {
            for atom in &self.mu[s].0 {
                // Only realizable atoms (all mandatory children
                // productive) contribute occurrences.
                if !atom
                    .entries()
                    .iter()
                    .all(|&(c, m)| !m.mandatory() || prod[c.ix()])
                {
                    continue;
                }
                for &(c, _) in atom.entries() {
                    if prod[c.ix()] && !reach[c.ix()] {
                        reach[c.ix()] = true;
                        stack.push(c.ix());
                    }
                }
            }
        }
        reach
    }

    /// Removes useless symbols, unrealizable atoms, and optional entries
    /// that can never be instantiated, preserving `rep` exactly. Returns
    /// the trimmed type and the old-to-new symbol mapping.
    pub fn trim(&self) -> (ConditionalTreeType, Vec<Option<Sym>>) {
        let useful = self.useful();
        let prod = self.productive();
        let mut remap: Vec<Option<Sym>> = vec![None; self.symbols.len()];
        let mut out = ConditionalTreeType::new();
        for s in self.syms() {
            if useful[s.ix()] {
                let info = self.info(s);
                let ns = out.add_symbol(info.name.clone(), info.target, info.cond.clone());
                remap[s.ix()] = Some(ns);
            }
        }
        for s in self.syms() {
            let Some(ns) = remap[s.ix()] else { continue };
            let mut atoms = Vec::new();
            for atom in &self.mu[s.ix()].0 {
                if !atom
                    .entries()
                    .iter()
                    .all(|&(c, m)| !m.mandatory() || prod[c.ix()])
                {
                    continue; // unrealizable atom
                }
                let entries: Vec<(Sym, Mult)> = atom
                    .entries()
                    .iter()
                    .filter_map(|&(c, m)| remap[c.ix()].map(|nc| (nc, m)))
                    .collect();
                atoms.push(SAtom::new(entries));
            }
            out.set_mu(ns, Disjunction(atoms));
        }
        out.set_roots(self.roots.iter().filter_map(|r| remap[r.ix()]).collect());
        (out, remap)
    }

    /// Constructs a concrete member of `rep`, using `gen` for fresh node
    /// ids of label-targeted symbols. Node-targeted symbols keep their
    /// instantiated id. Returns `None` when `rep` is empty.
    ///
    /// The witness is minimal: every optional child is omitted, every
    /// mandatory child instantiated once. For well-formed incomplete
    /// trees this always yields a valid member (node-targeted symbols
    /// occur at most once per tree by Definition 2.7(4)).
    pub fn witness(&self, gen: &mut NidGen) -> Option<DataTree> {
        // Rank symbols by the fixpoint round in which they became
        // productive; picking children of strictly lower rank guarantees
        // termination of the recursive construction.
        let n = self.symbols.len();
        let mut rank = vec![usize::MAX; n];
        let mut round = 0;
        loop {
            let mut changed = false;
            for s in 0..n {
                if rank[s] != usize::MAX || self.symbols[s].cond.is_empty() {
                    continue;
                }
                let ok = self.mu[s].0.iter().any(|atom| {
                    atom.entries()
                        .iter()
                        .all(|&(c, m)| !m.mandatory() || rank[c.ix()] < round + 1)
                });
                if ok {
                    rank[s] = round + 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            round += 1;
        }
        let root = *self
            .roots
            .iter()
            .filter(|r| rank[r.ix()] != usize::MAX)
            .min_by_key(|r| rank[r.ix()])?;
        let mut tree = self.instantiate_root(root, gen);
        let tree_root = tree.root();
        self.fill(root, &mut tree, tree_root, &rank, gen);
        Some(tree)
    }

    fn instantiate_root(&self, s: Sym, gen: &mut NidGen) -> DataTree {
        let (nid, label, value) = self.instantiation(s, gen);
        DataTree::new(nid, label, value)
    }

    fn instantiation(&self, s: Sym, gen: &mut NidGen) -> (Nid, Label, iixml_values::Rat) {
        let info = self.info(s);
        // Infallible: productivity (checked by the caller via `trim`)
        // requires a satisfiable condition, and satisfiable interval sets
        // always yield a witness value.
        let value = info
            .cond
            .witness()
            .expect("witness only called on productive symbols");
        match info.target {
            SymTarget::Lab(l) => (gen.fresh(), l, value),
            // Node symbols: the label recorded for display is not stored
            // here; IncompleteTree::witness patches labels for node
            // targets. We use a placeholder label resolved by the caller.
            SymTarget::Node(nid) => (nid, Label(u32::MAX), value),
        }
    }

    fn fill(
        &self,
        s: Sym,
        tree: &mut DataTree,
        at: iixml_tree::NodeRef,
        rank: &[usize],
        gen: &mut NidGen,
    ) {
        let my_rank = rank[s.ix()];
        let atom = self.mu[s.ix()]
            .0
            .iter()
            .find(|atom| {
                atom.entries()
                    .iter()
                    .all(|&(c, m)| !m.mandatory() || rank[c.ix()] < my_rank)
            })
            // Infallible: a symbol gets a finite rank exactly when one of
            // its atoms needs only lower-ranked mandatory children.
            .expect("productive symbol has a realizable atom");
        let mandatory: Vec<Sym> = atom
            .entries()
            .iter()
            .filter(|&&(_, m)| m.mandatory())
            .map(|&(c, _)| c)
            .collect();
        for c in mandatory {
            let (nid, label, value) = self.instantiation(c, gen);
            // Infallible: well-formedness (Definition 2.7) guarantees each
            // data node is reachable along exactly one symbol path, and
            // label-targeted symbols draw fresh ids from the generator.
            let child = tree
                .add_child(at, nid, label, value)
                .expect("well-formed types instantiate each data node once");
            self.fill(c, tree, child, rank, gen);
        }
    }

    /// Pretty-prints the type with label names from `alpha`.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> DisplayCtt<'a> {
        DisplayCtt { ty: self, alpha }
    }
}

/// Helper returned by [`ConditionalTreeType::display`].
pub struct DisplayCtt<'a> {
    ty: &'a ConditionalTreeType,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayCtt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.ty;
        write!(f, "roots:")?;
        for r in &t.roots {
            write!(f, " {}", t.info(*r).name)?;
        }
        writeln!(f)?;
        for s in t.syms() {
            let info = t.info(s);
            let target = match info.target {
                SymTarget::Lab(l) => self.alpha.name(l).to_string(),
                SymTarget::Node(n) => n.to_string(),
            };
            write!(f, "{} [-> {target}, {}] ::= ", info.name, info.cond)?;
            if t.mu(s).0.is_empty() {
                write!(f, "UNSAT")?;
            }
            for (i, atom) in t.mu(s).0.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                if atom.is_empty() {
                    write!(f, "eps")?;
                } else {
                    for (j, &(c, m)) in atom.entries().iter().enumerate() {
                        if j > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{}{}", t.info(c).name, m)?;
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_values::{Cond, Rat};

    /// A small type: root -> a b?, a -> eps, b -> b (unproductive: b
    /// requires an infinite chain).
    fn sample() -> (ConditionalTreeType, Sym, Sym, Sym) {
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol("root", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a = t.add_symbol("a", SymTarget::Lab(Label(1)), IntervalSet::all());
        let b = t.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        t.set_mu(
            root,
            Disjunction::single(SAtom::new(vec![(a, Mult::One), (b, Mult::Opt)])),
        );
        t.set_mu(a, Disjunction::leaf());
        t.set_mu(b, Disjunction::single(SAtom::new(vec![(b, Mult::One)])));
        t.add_root(root);
        (t, root, a, b)
    }

    #[test]
    fn productivity_fixpoint() {
        let (t, root, a, b) = sample();
        let p = t.productive();
        assert!(p[root.ix()]);
        assert!(p[a.ix()]);
        assert!(!p[b.ix()], "b requires an infinite descent");
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_when_root_needs_unproductive_child() {
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol("root", SymTarget::Lab(Label(0)), IntervalSet::all());
        let b = t.add_symbol("b", SymTarget::Lab(Label(1)), IntervalSet::all());
        t.set_mu(root, Disjunction::single(SAtom::new(vec![(b, Mult::Plus)])));
        t.set_mu(b, Disjunction::single(SAtom::new(vec![(b, Mult::One)])));
        t.add_root(root);
        assert!(t.is_empty());
    }

    #[test]
    fn unsatisfiable_condition_kills_symbol() {
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol("root", SymTarget::Lab(Label(0)), IntervalSet::empty());
        t.set_mu(root, Disjunction::leaf());
        t.add_root(root);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_disjunction_is_unsat() {
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol("root", SymTarget::Lab(Label(0)), IntervalSet::all());
        t.add_root(root);
        // µ(root) left as the default empty disjunction.
        assert!(t.is_empty());
    }

    #[test]
    fn trim_removes_useless() {
        let (t, _, _, _) = sample();
        let (trimmed, remap) = t.trim();
        assert_eq!(trimmed.sym_count(), 2, "b is dropped");
        assert!(remap[2].is_none());
        // The root's atom lost its optional b entry.
        let root = remap[0].unwrap();
        assert_eq!(trimmed.mu(root).0.len(), 1);
        assert_eq!(trimmed.mu(root).0[0].len(), 1);
        assert!(!trimmed.is_empty());
    }

    #[test]
    fn trim_drops_unreachable() {
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol("root", SymTarget::Lab(Label(0)), IntervalSet::all());
        let orphan = t.add_symbol("orphan", SymTarget::Lab(Label(1)), IntervalSet::all());
        t.set_mu(root, Disjunction::leaf());
        t.set_mu(orphan, Disjunction::leaf());
        t.add_root(root);
        let (trimmed, remap) = t.trim();
        assert_eq!(trimmed.sym_count(), 1);
        assert!(remap[orphan.ix()].is_none());
    }

    #[test]
    fn witness_constructs_member() {
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol(
            "root",
            SymTarget::Lab(Label(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let a = t.add_symbol(
            "a",
            SymTarget::Lab(Label(1)),
            Cond::gt(Rat::from(5)).to_intervals(),
        );
        let b = t.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        t.set_mu(
            root,
            Disjunction::single(SAtom::new(vec![(a, Mult::Plus), (b, Mult::Star)])),
        );
        t.set_mu(a, Disjunction::leaf());
        t.set_mu(b, Disjunction::leaf());
        t.add_root(root);
        let mut gen = NidGen::starting_at(1000);
        let w = t.witness(&mut gen).unwrap();
        // root with exactly one `a` child (mandatory), no `b` (optional).
        assert_eq!(w.len(), 2);
        assert_eq!(w.value(w.root()), Rat::ZERO);
        let child = w.children(w.root())[0];
        assert_eq!(w.label(child), Label(1));
        assert!(w.value(child) > Rat::from(5));
    }

    #[test]
    fn witness_none_for_empty() {
        let (mut t, root, _, b) = sample();
        // Make b mandatory: type becomes empty.
        let a = Sym(1);
        t.set_mu(
            root,
            Disjunction::single(SAtom::new(vec![(a, Mult::One), (b, Mult::One)])),
        );
        assert!(t.is_empty());
        assert!(t.witness(&mut NidGen::new()).is_none());
    }

    #[test]
    fn disjunction_gives_choice() {
        // root -> a | b with a unproductive: witness must pick b.
        let mut t = ConditionalTreeType::new();
        let root = t.add_symbol("root", SymTarget::Lab(Label(0)), IntervalSet::all());
        let a = t.add_symbol("a", SymTarget::Lab(Label(1)), IntervalSet::all());
        let b = t.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        t.set_mu(
            root,
            Disjunction(vec![
                SAtom::new(vec![(a, Mult::One)]),
                SAtom::new(vec![(b, Mult::One)]),
            ]),
        );
        t.set_mu(a, Disjunction(vec![])); // unsat
        t.set_mu(b, Disjunction::leaf());
        t.add_root(root);
        assert!(!t.is_empty());
        let w = t.witness(&mut NidGen::new()).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.label(w.children(w.root())[0]), Label(2));
    }

    #[test]
    fn size_counts_symbols_and_entries() {
        let (t, _, _, _) = sample();
        // 3 symbols; atoms: root's (2 entries + 1) + a's eps (0+1) + b's
        // (1+1) = 6; total 9.
        assert_eq!(t.size(), 9);
    }

    #[test]
    fn display_mentions_everything() {
        let (t, _, _, _) = sample();
        let alpha = Alphabet::from_names(["root", "a", "b"]);
        let s = t.display(&alpha).to_string();
        assert!(s.contains("roots: root"));
        assert!(s.contains("a? ") || s.contains("b?"));
        assert!(s.contains("eps"));
    }
}
