//! XML serialization of incomplete trees.
//!
//! The paper emphasizes that incomplete trees "exhibit in a user-friendly
//! way the partial information available as well as the missing
//! information, and can be itself naturally represented and browsed as an
//! XML document". This module provides that document form:
//!
//! ```xml
//! <incomplete>
//!   <data-node nid="0" label="root" val="0"/>
//!   <data-node nid="1" label="a" val="0"/>
//!   <symbol id="0" name="r" node="0" cond="= 0" root="true">
//!     <alt><e sym="1" mult="1"/><e sym="2" mult="*"/></alt>
//!   </symbol>
//!   <symbol id="2" name="a" label="a" cond="!= 0">
//!     <alt><e sym="3" mult="*"/></alt>
//!   </symbol>
//! </incomplete>
//! ```
//!
//! `write_incomplete_xml` / `parse_incomplete_xml` round-trip exactly
//! (same symbols, atoms, conditions, data nodes).

use crate::ctt::{ConditionalTreeType, Disjunction, SAtom, Sym, SymTarget};
use crate::itree::{IncompleteTree, NodeInfo};
use iixml_tree::{Alphabet, Label, Mult, Nid};
use iixml_values::parse::parse_cond;
use iixml_values::{Cond, Rat};
use std::collections::BTreeMap;
use std::fmt;

/// Serializes an incomplete tree as an XML document.
pub fn write_incomplete_xml(it: &IncompleteTree, alpha: &Alphabet) -> String {
    let ty = it.ty();
    let mut out = String::from("<incomplete>\n");
    for (&nid, info) in it.nodes() {
        out.push_str(&format!(
            "  <data-node nid=\"{}\" label=\"{}\" val=\"{}\"/>\n",
            nid.0,
            alpha.name(info.label),
            info.value
        ));
    }
    for s in ty.syms() {
        let info = ty.info(s);
        let target = match info.target {
            SymTarget::Node(n) => format!("node=\"{}\"", n.0),
            SymTarget::Lab(l) => format!("label=\"{}\"", alpha.name(l)),
        };
        let cond = Cond::from_intervals(&info.cond);
        let root_attr = if ty.roots().contains(&s) {
            " root=\"true\""
        } else {
            ""
        };
        out.push_str(&format!(
            "  <symbol id=\"{}\" name=\"{}\" {target} cond=\"{cond}\"{root_attr}>\n",
            s.0,
            xml_escape(&info.name),
        ));
        for atom in ty.mu(s).atoms() {
            out.push_str("    <alt>");
            for &(c, m) in atom.entries() {
                out.push_str(&format!("<e sym=\"{}\" mult=\"{}\"/>", c.0, mult_text(m)));
            }
            out.push_str("</alt>\n");
        }
        out.push_str("  </symbol>\n");
    }
    out.push_str("</incomplete>\n");
    out
}

fn mult_text(m: Mult) -> &'static str {
    match m {
        Mult::One => "1",
        Mult::Opt => "?",
        Mult::Plus => "+",
        Mult::Star => "*",
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('"', "&quot;")
        .replace('<', "&lt;")
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&quot;", "\"")
        .replace("&amp;", "&")
}

/// Error from parsing the incomplete-tree XML form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incomplete-tree xml error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for IoError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> IoError {
        IoError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let t = self.rest().trim_start();
        self.pos = self.input.len() - t.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), IoError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{tok}'")))
        }
    }

    /// Parses `key="value"` pairs until `/>` or `>`; returns the pairs
    /// and whether the element was self-closing.
    fn parse_attrs(&mut self) -> Result<(Vec<(String, String)>, bool), IoError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok((attrs, true));
            }
            if self.eat(">") {
                return Ok((attrs, false));
            }
            let rest = self.rest();
            let eq = rest
                .find('=')
                .ok_or_else(|| self.err("expected attribute"))?;
            let key = rest[..eq].trim().to_string();
            self.pos += eq + 1;
            self.expect("\"")?;
            let rest = self.rest();
            let close = rest
                .find('"')
                .ok_or_else(|| self.err("unterminated attribute value"))?;
            let value = xml_unescape(&rest[..close]);
            self.pos += close + 1;
            attrs.push((key, value));
        }
    }
}

fn get<'v>(attrs: &'v [(String, String)], key: &str) -> Option<&'v str> {
    attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Parses the XML document form back into an incomplete tree, interning
/// label names into `alpha`.
pub fn parse_incomplete_xml(input: &str, alpha: &mut Alphabet) -> Result<IncompleteTree, IoError> {
    let mut p = Parser { input, pos: 0 };
    p.expect("<incomplete")?;
    p.expect(">")?;
    let mut nodes: BTreeMap<Nid, NodeInfo> = BTreeMap::new();
    // Symbols may reference higher ids; collect raw first.
    struct RawSymbol {
        id: u32,
        name: String,
        target: SymTarget,
        cond: iixml_values::IntervalSet,
        root: bool,
        atoms: Vec<Vec<(u32, Mult)>>,
    }
    let mut raw: Vec<RawSymbol> = Vec::new();
    loop {
        if p.eat("</incomplete") {
            p.expect(">")?;
            break;
        }
        if p.eat("<data-node") {
            let (attrs, closed) = p.parse_attrs()?;
            if !closed {
                return Err(p.err("data-node must be self-closing"));
            }
            let nid: u64 = get(&attrs, "nid")
                .ok_or_else(|| p.err("data-node missing nid"))?
                .parse()
                .map_err(|e| p.err(format!("bad nid: {e}")))?;
            let label: Label =
                alpha.intern(get(&attrs, "label").ok_or_else(|| p.err("data-node missing label"))?);
            let value: Rat = get(&attrs, "val")
                .ok_or_else(|| p.err("data-node missing val"))?
                .parse()
                .map_err(|e| p.err(format!("bad val: {e}")))?;
            nodes.insert(Nid(nid), NodeInfo { label, value });
            continue;
        }
        if p.eat("<symbol") {
            let (attrs, closed) = p.parse_attrs()?;
            let id: u32 = get(&attrs, "id")
                .ok_or_else(|| p.err("symbol missing id"))?
                .parse()
                .map_err(|e| p.err(format!("bad id: {e}")))?;
            let name = get(&attrs, "name").unwrap_or_default().to_string();
            let target = if let Some(n) = get(&attrs, "node") {
                SymTarget::Node(Nid(n
                    .parse()
                    .map_err(|e| p.err(format!("bad node: {e}")))?))
            } else if let Some(l) = get(&attrs, "label") {
                SymTarget::Lab(alpha.intern(l))
            } else {
                return Err(p.err("symbol needs node= or label="));
            };
            let cond = parse_cond(get(&attrs, "cond").unwrap_or("true"))
                .map_err(|e| p.err(e.to_string()))?
                .to_intervals();
            let root = get(&attrs, "root") == Some("true");
            let mut atoms = Vec::new();
            if !closed {
                loop {
                    if p.eat("</symbol") {
                        p.expect(">")?;
                        break;
                    }
                    p.expect("<alt")?;
                    let (_, alt_closed) = p.parse_attrs()?;
                    let mut entries = Vec::new();
                    if !alt_closed {
                        loop {
                            if p.eat("</alt") {
                                p.expect(">")?;
                                break;
                            }
                            p.expect("<e")?;
                            let (eattrs, eclosed) = p.parse_attrs()?;
                            if !eclosed {
                                return Err(p.err("e must be self-closing"));
                            }
                            let sym: u32 = get(&eattrs, "sym")
                                .ok_or_else(|| p.err("e missing sym"))?
                                .parse()
                                .map_err(|e| p.err(format!("bad sym: {e}")))?;
                            let mult = match get(&eattrs, "mult") {
                                Some("1") => Mult::One,
                                Some("?") => Mult::Opt,
                                Some("+") => Mult::Plus,
                                Some("*") => Mult::Star,
                                other => return Err(p.err(format!("bad mult {other:?}"))),
                            };
                            entries.push((sym, mult));
                        }
                    }
                    atoms.push(entries);
                }
            }
            raw.push(RawSymbol {
                id,
                name,
                target,
                cond,
                root,
                atoms,
            });
            continue;
        }
        return Err(p.err("expected <data-node>, <symbol>, or </incomplete>"));
    }
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(p.err("trailing input"));
    }
    // Assemble: symbol ids must be dense 0..n in file order.
    raw.sort_by_key(|r| r.id);
    let mut ty = ConditionalTreeType::new();
    for (i, r) in raw.iter().enumerate() {
        if r.id as usize != i {
            return Err(IoError {
                at: 0,
                message: format!("symbol ids must be dense; missing id {i}"),
            });
        }
        ty.add_symbol(r.name.clone(), r.target, r.cond.clone());
    }
    let n = raw.len() as u32;
    for r in &raw {
        let atoms = r
            .atoms
            .iter()
            .map(|entries| {
                let es: Result<Vec<(Sym, Mult)>, IoError> = entries
                    .iter()
                    .map(|&(sid, m)| {
                        if sid >= n {
                            Err(IoError {
                                at: 0,
                                message: format!("entry references unknown symbol {sid}"),
                            })
                        } else {
                            Ok((Sym(sid), m))
                        }
                    })
                    .collect();
                es.map(SAtom::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        ty.set_mu(Sym(r.id), Disjunction(atoms));
        if r.root {
            ty.add_root(Sym(r.id));
        }
    }
    IncompleteTree::new(nodes, ty).map_err(|e| IoError {
        at: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_values::IntervalSet;

    fn example() -> (IncompleteTree, Alphabet) {
        let alpha = Alphabet::from_names(["root", "a", "b"]);
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Node(Nid(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let n = ty.add_symbol(
            "n",
            SymTarget::Node(Nid(1)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let a = ty.add_symbol(
            "a",
            SymTarget::Lab(Label(1)),
            Cond::ne(Rat::ZERO).to_intervals(),
        );
        let b = ty.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(n, Mult::One), (a, Mult::Star)])),
        );
        ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        (IncompleteTree::new(nodes, ty).unwrap(), alpha)
    }

    #[test]
    fn roundtrip_exact() {
        let (it, alpha) = example();
        let xml = write_incomplete_xml(&it, &alpha);
        assert!(xml.contains("<data-node nid=\"0\""));
        assert!(xml.contains("root=\"true\""));
        let mut alpha2 = alpha.clone();
        let back = parse_incomplete_xml(&xml, &mut alpha2).unwrap();
        // Structural identity: serializing again gives the same text.
        assert_eq!(write_incomplete_xml(&back, &alpha2), xml);
        // Semantic identity on samples.
        let mut gen = iixml_tree::NidGen::starting_at(100);
        let w = it.witness(&mut gen).unwrap();
        assert!(back.contains(&w));
        assert_eq!(it.size(), back.size());
    }

    #[test]
    fn roundtrip_through_fresh_alphabet() {
        let (it, alpha) = example();
        let xml = write_incomplete_xml(&it, &alpha);
        let mut fresh = Alphabet::new();
        let back = parse_incomplete_xml(&xml, &mut fresh).unwrap();
        // Re-serializing with the fresh alphabet reproduces the text.
        assert_eq!(write_incomplete_xml(&back, &fresh), xml);
    }

    #[test]
    fn parse_errors() {
        let mut a = Alphabet::new();
        assert!(parse_incomplete_xml("", &mut a).is_err());
        assert!(parse_incomplete_xml("<incomplete>", &mut a).is_err());
        assert!(parse_incomplete_xml(
            "<incomplete><data-node nid=\"x\" label=\"a\" val=\"0\"/></incomplete>",
            &mut a
        )
        .is_err());
        assert!(
            parse_incomplete_xml(
                "<incomplete><symbol id=\"0\" name=\"s\" cond=\"true\"/></incomplete>",
                &mut a
            )
            .is_err(),
            "symbol without target"
        );
        // Entry referencing an unknown symbol.
        let bad = "<incomplete><symbol id=\"0\" name=\"s\" label=\"a\" cond=\"true\"><alt><e sym=\"9\" mult=\"*\"/></alt></symbol></incomplete>";
        assert!(parse_incomplete_xml(bad, &mut a).is_err());
        // Symbol targeting an undeclared data node.
        let bad = "<incomplete><symbol id=\"0\" name=\"s\" node=\"5\" cond=\"true\" root=\"true\"/></incomplete>";
        assert!(parse_incomplete_xml(bad, &mut a).is_err());
    }

    #[test]
    fn refined_tree_roundtrips() {
        // A tree produced by an actual Refine chain round-trips.
        use crate::refine::Refiner;
        use iixml_query::PsQueryBuilder;
        use iixml_tree::DataTree;
        let mut alpha = Alphabet::from_names(["root", "a", "b"]);
        let mut doc = DataTree::new(Nid(0), Label(0), Rat::ZERO);
        doc.add_child(doc.root(), Nid(1), Label(1), Rat::from(5))
            .unwrap();
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::lt(Rat::from(10))).unwrap();
        let q = b.build();
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q, &q.eval(&doc)).unwrap();
        let it = refiner.current();
        let xml = write_incomplete_xml(it, &alpha);
        let mut alpha2 = alpha.clone();
        let back = parse_incomplete_xml(&xml, &mut alpha2).unwrap();
        assert_eq!(write_incomplete_xml(&back, &alpha2), xml);
        assert!(back.contains(&doc));
    }
}
