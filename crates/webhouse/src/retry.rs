//! Retry policies with exponential backoff and deterministic jitter.
//!
//! Backoff is *simulated* by default: the webhouse records the pause it
//! would have taken (in the `webhouse.backoff_ns` histogram and against
//! the per-query budget) without sleeping, so chaos tests can run
//! thousands of faulty completions in milliseconds while exercising the
//! exact decision logic a wall-clock deployment would. Set
//! [`RetryPolicy::sleep`] for real pauses.

use iixml_gen::rng::DetRng;

/// How a session retries failed source queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per local query, including the first (1 = never
    /// retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff_ns: u64,
    /// Upper bound on a single backoff pause.
    pub max_backoff_ns: u64,
    /// Total backoff budget per query: once the (simulated) pauses for a
    /// query would exceed this, the query fails even if attempts remain.
    pub budget_ns: u64,
    /// Actually sleep for each backoff pause (off by default: pauses are
    /// simulated deterministically).
    pub sleep: bool,
}

impl Default for RetryPolicy {
    /// 4 attempts, 1 ms base doubling to at most 100 ms, 1 s per-query
    /// budget, simulated pauses.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 1_000_000,
            max_backoff_ns: 100_000_000,
            budget_ns: 1_000_000_000,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// Never retry: every source error is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (0-based): exponential
    /// (`base · 2^attempt`, capped) with deterministic *equal jitter* —
    /// uniform in `[cap/2, cap]` drawn from the session's seeded RNG, so
    /// identical seeds replay identical backoff schedules.
    pub fn backoff_ns(&self, attempt: u32, rng: &mut DetRng) -> u64 {
        let cap = self
            .base_backoff_ns
            .saturating_mul(1u64 << attempt.min(20))
            .clamp(1, self.max_backoff_ns.max(1));
        let half = cap / 2;
        half + rng.below(cap - half + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_backoff_ns: 1_000,
            max_backoff_ns: 8_000,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::new(1);
        for attempt in 0..10 {
            let cap = (1_000u64 << attempt).min(8_000);
            let b = p.backoff_ns(attempt, &mut rng);
            assert!(
                b >= cap / 2 && b <= cap,
                "attempt {attempt}: {b} vs cap {cap}"
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let seq = |seed| {
            let mut rng = DetRng::new(seed);
            (0..5)
                .map(|a| p.backoff_ns(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }
}
