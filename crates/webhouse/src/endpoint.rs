//! Source endpoints: the boundary between the webhouse and the remote
//! documents it mediates over.
//!
//! [`SourceEndpoint`] abstracts "something that answers ps-queries" so
//! the session loop is written once against a fallible interface:
//! the in-memory [`Source`] never fails, while [`FaultySource`] wraps a
//! source with a deterministic, seeded fault injector (timeouts,
//! transient errors, truncated and type-violating answers, mid-session
//! document updates) for chaos testing the recovery paths.

use crate::error::SourceError;
use iixml_gen::rng::DetRng;
use iixml_query::{Answer, PsQuery};
use iixml_tree::{DataTree, Nid, NodeRef, TreeType};
use iixml_values::Rat;

/// Something that answers ps-queries on behalf of a remote document.
///
/// `ask`/`ask_at` are fallible: an endpoint may time out, fail
/// transiently, or ship an answer that later fails validation. The
/// webhouse session retries per its `RetryPolicy` and validates every
/// shipped answer before trusting it.
pub trait SourceEndpoint {
    /// The source's declared tree type, if any.
    fn declared_type(&self) -> Option<&TreeType>;

    /// Answers a ps-query against the document root.
    fn ask(&mut self, q: &PsQuery) -> Result<Answer, SourceError>;

    /// Answers a local query `p@n` anchored at the (previously shipped)
    /// node `n`.
    fn ask_at(&mut self, q: &PsQuery, at: Nid) -> Result<Answer, SourceError>;

    /// Queries answered so far (experiment accounting).
    fn queries_served(&self) -> usize;

    /// Total answer nodes shipped so far (experiment accounting).
    fn nodes_shipped(&self) -> usize;
}

/// A simulated remote XML document.
#[derive(Clone, Debug)]
pub struct Source {
    pub(crate) tree: DataTree,
    pub(crate) ty: Option<TreeType>,
    /// Number of queries answered (for experiment accounting).
    pub queries_served: usize,
    /// Total answer nodes shipped (for experiment accounting).
    pub nodes_shipped: usize,
}

impl Source {
    /// Wraps a document with an optional declared type, trusting the
    /// caller that the document conforms (use [`Source::try_new`] for
    /// untrusted documents).
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) when the document does not satisfy the
    /// declared type.
    pub fn new(tree: DataTree, ty: Option<TreeType>) -> Source {
        if let Some(t) = &ty {
            debug_assert!(t.accepts(&tree), "source does not satisfy its type");
        }
        Source {
            tree,
            ty,
            queries_served: 0,
            nodes_shipped: 0,
        }
    }

    /// Like [`Source::new`], but checks type conformance and fails with
    /// [`SourceError::TypeViolation`] instead of trusting the caller.
    pub fn try_new(tree: DataTree, ty: Option<TreeType>) -> Result<Source, SourceError> {
        if let Some(t) = &ty {
            t.validate(&tree)
                .map_err(|e| SourceError::TypeViolation(e.to_string()))?;
        }
        Ok(Source::new_unchecked(tree, ty))
    }

    fn new_unchecked(tree: DataTree, ty: Option<TreeType>) -> Source {
        Source {
            tree,
            ty,
            queries_served: 0,
            nodes_shipped: 0,
        }
    }

    /// The declared tree type, if any.
    pub fn declared_type(&self) -> Option<&TreeType> {
        self.ty.as_ref()
    }

    /// The live document (tests and experiments peek at it; the
    /// webhouse itself only sees query answers).
    pub fn document(&self) -> &DataTree {
        &self.tree
    }

    /// Answers a ps-query (with persistent node ids, Remark 2.4).
    pub fn answer(&mut self, q: &PsQuery) -> Answer {
        let a = q.eval(&self.tree);
        self.queries_served += 1;
        self.nodes_shipped += a.len();
        a
    }

    /// Replaces the document (a source update), trusting the caller on
    /// type conformance — see [`Source::try_update`]. The webhouse
    /// reacts by reinitializing its knowledge (Section 5's discussion).
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) when the new document does not satisfy
    /// the declared type.
    pub fn update(&mut self, tree: DataTree) {
        if let Some(t) = &self.ty {
            debug_assert!(t.accepts(&tree), "updated source violates its type");
        }
        self.tree = tree;
    }

    /// Like [`Source::update`], but checks type conformance and fails
    /// with [`SourceError::TypeViolation`], leaving the document
    /// unchanged.
    pub fn try_update(&mut self, tree: DataTree) -> Result<(), SourceError> {
        if let Some(t) = &self.ty {
            t.validate(&tree)
                .map_err(|e| SourceError::TypeViolation(e.to_string()))?;
        }
        self.tree = tree;
        Ok(())
    }
}

impl SourceEndpoint for Source {
    fn declared_type(&self) -> Option<&TreeType> {
        self.ty.as_ref()
    }

    fn ask(&mut self, q: &PsQuery) -> Result<Answer, SourceError> {
        Ok(self.answer(q))
    }

    fn ask_at(&mut self, q: &PsQuery, at: Nid) -> Result<Answer, SourceError> {
        let a = q
            .eval_at(&self.tree, at)
            .ok_or(SourceError::MissingAnchor(at))?;
        self.queries_served += 1;
        self.nodes_shipped += a.len();
        Ok(a)
    }

    fn queries_served(&self) -> usize {
        self.queries_served
    }

    fn nodes_shipped(&self) -> usize {
        self.nodes_shipped
    }
}

/// Per-answer fault probabilities for [`FaultySource`] (each in
/// `[0, 1]`, drawn independently per query from the seeded RNG).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Chance the query times out ([`SourceError::Timeout`]).
    pub timeout: f64,
    /// Chance of a transient error ([`SourceError::Transient`]).
    pub transient: f64,
    /// Chance the answer is truncated: a random non-root subtree is
    /// dropped. Half the truncations are *sloppy* (provenance left
    /// dangling — locally detectable), half *consistent* (provenance
    /// pruned too — only detectable later as a contradiction).
    pub truncate: f64,
    /// Chance the answer is poisoned with a value that violates the
    /// matched pattern node's condition (detectable by validation when
    /// the condition is non-trivial, otherwise caught downstream as a
    /// contradiction).
    pub type_violation: f64,
    /// Chance the document mutates *before* answering (a mid-session
    /// source update: one node's value changes) — later answers then
    /// contradict accumulated knowledge.
    pub update: f64,
}

impl FaultPlan {
    /// No faults at all (a `FaultySource` with this plan behaves exactly
    /// like its inner [`Source`]).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The same rate for every fault kind.
    pub fn uniform(rate: f64) -> FaultPlan {
        FaultPlan {
            timeout: rate,
            transient: rate,
            truncate: rate,
            type_violation: rate,
            update: rate,
        }
    }
}

/// How many faults of each kind a [`FaultySource`] has injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Timeouts returned.
    pub timeouts: usize,
    /// Transient errors returned.
    pub transients: usize,
    /// Answers truncated.
    pub truncated: usize,
    /// Answers poisoned with condition-violating values.
    pub poisoned: usize,
    /// Mid-session document mutations.
    pub updates: usize,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> usize {
        self.timeouts + self.transients + self.truncated + self.poisoned + self.updates
    }
}

/// A [`Source`] wrapped in a deterministic fault injector: every fault
/// decision is drawn from a seeded [`DetRng`], so a chaos run replays
/// byte-for-byte from its seed.
#[derive(Clone, Debug)]
pub struct FaultySource {
    inner: Source,
    plan: FaultPlan,
    rng: DetRng,
    /// Faults injected so far, by kind.
    pub faults: FaultCounts,
}

impl FaultySource {
    /// Wraps a source with a fault plan and a seed.
    pub fn new(inner: Source, plan: FaultPlan, seed: u64) -> FaultySource {
        FaultySource {
            inner,
            plan,
            rng: DetRng::new(seed),
            faults: FaultCounts::default(),
        }
    }

    /// Replaces the fault plan mid-run (chaos experiments flip sources
    /// between healthy and dark phases).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// The current fault plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The wrapped source.
    pub fn inner(&self) -> &Source {
        &self.inner
    }

    /// The wrapped source, mutably (experiments may update the document
    /// by hand).
    pub fn inner_mut(&mut self) -> &mut Source {
        &mut self.inner
    }

    /// Mutates one random node's value in the live document — the
    /// mid-session update fault. Structure is untouched, so the declared
    /// type (which constrains labels and multiplicities only) still
    /// holds.
    fn mutate_document(&mut self) {
        let nodes = self.inner.tree.preorder();
        let victim = nodes[self.rng.range_usize(0, nodes.len())];
        let bump = Rat::from(self.rng.range_i64(1, 1_000));
        let new = self.inner.tree.value(victim) + bump;
        self.inner.tree.set_value(victim, new);
        self.faults.updates += 1;
    }

    /// Applies answer-level faults (truncation, poisoning) to a genuine
    /// answer.
    fn corrupt(&mut self, mut ans: Answer) -> Answer {
        if self.rng.bool(self.plan.truncate) {
            if let Some(t) = &ans.tree {
                if t.len() > 1 {
                    let nodes = t.preorder();
                    // Any non-root node; dropping it drops its subtree.
                    let victim = nodes[self.rng.range_usize(1, nodes.len())];
                    let keep_dangling = self.rng.bool(0.5);
                    let (pruned, dropped) = drop_subtree(t, victim);
                    if !keep_dangling {
                        for nid in &dropped {
                            ans.provenance.remove(nid);
                        }
                    }
                    ans.tree = Some(pruned);
                    self.faults.truncated += 1;
                }
            }
        }
        if self.rng.bool(self.plan.type_violation) {
            if let Some(t) = &mut ans.tree {
                let nodes = t.preorder();
                let victim = nodes[self.rng.range_usize(0, nodes.len())];
                let skew = Rat::from(self.rng.range_i64(100_000, 1_000_000));
                let new = t.value(victim) + skew;
                t.set_value(victim, new);
                self.faults.poisoned += 1;
            }
        }
        ans
    }

    fn pre_answer_fault(&mut self) -> Option<SourceError> {
        if self.rng.bool(self.plan.update) {
            self.mutate_document();
        }
        if self.rng.bool(self.plan.timeout) {
            self.faults.timeouts += 1;
            return Some(SourceError::Timeout);
        }
        if self.rng.bool(self.plan.transient) {
            self.faults.transients += 1;
            return Some(SourceError::Transient("injected".to_string()));
        }
        None
    }
}

impl SourceEndpoint for FaultySource {
    fn declared_type(&self) -> Option<&TreeType> {
        self.inner.declared_type()
    }

    fn ask(&mut self, q: &PsQuery) -> Result<Answer, SourceError> {
        if let Some(e) = self.pre_answer_fault() {
            return Err(e);
        }
        let ans = self.inner.answer(q);
        Ok(self.corrupt(ans))
    }

    fn ask_at(&mut self, q: &PsQuery, at: Nid) -> Result<Answer, SourceError> {
        if let Some(e) = self.pre_answer_fault() {
            return Err(e);
        }
        let ans = self.inner.ask_at(q, at)?;
        Ok(self.corrupt(ans))
    }

    fn queries_served(&self) -> usize {
        self.inner.queries_served
    }

    fn nodes_shipped(&self) -> usize {
        self.inner.nodes_shipped
    }
}

/// An endpoint wrapper that adds a fixed wall-clock latency to every
/// query — a stand-in for the network round-trip to a real web source.
///
/// The latency is pure waiting (a sleep, no CPU), which is exactly the
/// regime the webhouse fan-out parallelizes: N sources × latency L
/// collapses from `N·L` sequential to `≈L` when sessions run
/// concurrently. Answers, fault streams, and accounting are untouched —
/// a `LatentSource` is semantically transparent.
#[derive(Clone, Debug)]
pub struct LatentSource<E: SourceEndpoint = Source> {
    inner: E,
    latency: std::time::Duration,
}

impl<E: SourceEndpoint> LatentSource<E> {
    /// Wraps an endpoint with a per-query latency.
    pub fn new(inner: E, latency: std::time::Duration) -> LatentSource<E> {
        LatentSource { inner, latency }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The wrapped endpoint, mutably.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    fn wait(&self) {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }
}

impl<E: SourceEndpoint> SourceEndpoint for LatentSource<E> {
    fn declared_type(&self) -> Option<&TreeType> {
        self.inner.declared_type()
    }

    fn ask(&mut self, q: &PsQuery) -> Result<Answer, SourceError> {
        self.wait();
        self.inner.ask(q)
    }

    fn ask_at(&mut self, q: &PsQuery, at: Nid) -> Result<Answer, SourceError> {
        self.wait();
        self.inner.ask_at(q, at)
    }

    fn queries_served(&self) -> usize {
        self.inner.queries_served()
    }

    fn nodes_shipped(&self) -> usize {
        self.inner.nodes_shipped()
    }
}

/// Copies `t` without the subtree rooted at `victim`; returns the copy
/// and the dropped node ids.
fn drop_subtree(t: &DataTree, victim: NodeRef) -> (DataTree, Vec<Nid>) {
    let mut out = DataTree::new(t.nid(t.root()), t.label(t.root()), t.value(t.root()));
    let mut dropped = Vec::new();
    fn walk(
        t: &DataTree,
        from: NodeRef,
        out: &mut DataTree,
        to: NodeRef,
        victim: NodeRef,
        dropped: &mut Vec<Nid>,
    ) {
        for &c in t.children(from) {
            if c == victim {
                collect(t, c, dropped);
                continue;
            }
            // Nids are unique in `t` and each is copied at most once, so
            // this insert cannot collide; if that invariant were ever
            // broken, dropping the subtree (the injector's job anyway)
            // beats panicking inside the fault model.
            match out.add_child(to, t.nid(c), t.label(c), t.value(c)) {
                Ok(nc) => walk(t, c, out, nc, victim, dropped),
                Err(_) => collect(t, c, dropped),
            }
        }
    }
    fn collect(t: &DataTree, n: NodeRef, dropped: &mut Vec<Nid>) {
        dropped.push(t.nid(n));
        for &c in t.children(n) {
            collect(t, c, dropped);
        }
    }
    let root = out.root();
    walk(t, t.root(), &mut out, root, victim, &mut dropped);
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::Alphabet;
    use iixml_values::Cond;

    fn doc(alpha: &mut Alphabet) -> DataTree {
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        t.add_child(t.root(), Nid(1), a, Rat::from(1)).unwrap();
        t.add_child(t.root(), Nid(2), a, Rat::from(2)).unwrap();
        t
    }

    fn query(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::True).unwrap();
        b.build()
    }

    #[test]
    fn faultless_plan_is_transparent() {
        let mut alpha = Alphabet::new();
        let d = doc(&mut alpha);
        let q = query(&mut alpha);
        let mut plain = Source::new(d.clone(), None);
        let mut faulty = FaultySource::new(Source::new(d, None), FaultPlan::none(), 1);
        let a = plain.answer(&q);
        let b = faulty.ask(&q).unwrap();
        assert!(a.tree.unwrap().same_tree(b.tree.as_ref().unwrap()));
        assert_eq!(faulty.faults.total(), 0);
    }

    #[test]
    fn fault_streams_replay_from_seed() {
        let mut alpha = Alphabet::new();
        let d = doc(&mut alpha);
        let q = query(&mut alpha);
        let run = |seed| {
            let mut f =
                FaultySource::new(Source::new(d.clone(), None), FaultPlan::uniform(0.3), seed);
            (0..50).map(|_| f.ask(&q).is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn timeouts_are_injected_at_roughly_the_configured_rate() {
        let mut alpha = Alphabet::new();
        let d = doc(&mut alpha);
        let q = query(&mut alpha);
        let plan = FaultPlan {
            timeout: 0.25,
            ..FaultPlan::none()
        };
        let mut f = FaultySource::new(Source::new(d, None), plan, 9);
        let errs = (0..1_000).filter(|_| f.ask(&q).is_err()).count();
        assert!((150..350).contains(&errs), "timeout rate off: {errs}/1000");
    }

    #[test]
    fn try_new_rejects_type_violations() {
        let mut alpha = Alphabet::new();
        let ty = iixml_tree::TreeTypeBuilder::new(&mut alpha)
            .root("root")
            .rule("root", &[("a", iixml_tree::Mult::One)])
            .build()
            .unwrap();
        let d = doc(&mut alpha); // two `a` children: violates One
        assert!(matches!(
            Source::try_new(d.clone(), Some(ty.clone())),
            Err(SourceError::TypeViolation(_))
        ));
        // And try_update leaves the document unchanged on rejection.
        let mut ok_doc = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        ok_doc
            .add_child(ok_doc.root(), Nid(1), alpha.get("a").unwrap(), Rat::ZERO)
            .unwrap();
        let mut src = Source::try_new(ok_doc.clone(), Some(ty)).unwrap();
        assert!(src.try_update(d).is_err());
        assert!(src.document().same_tree(&ok_doc));
    }

    #[test]
    fn drop_subtree_removes_exactly_the_victim() {
        let mut alpha = Alphabet::new();
        let d = doc(&mut alpha);
        let victim = d.by_nid(Nid(1)).unwrap();
        let (pruned, dropped) = drop_subtree(&d, victim);
        assert_eq!(pruned.len(), 2);
        assert_eq!(dropped, vec![Nid(1)]);
        assert!(pruned.by_nid(Nid(2)).is_some());
    }
}
