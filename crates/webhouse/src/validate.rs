//! Answer validation: reject poisoned answers before they are grafted
//! into a session's incomplete tree.
//!
//! A shipped answer claims to be `q(source)` restricted to the query
//! pattern. Before trusting it, the webhouse checks every claim that is
//! locally checkable:
//!
//! 1. every shipped node carries provenance (which pattern node it
//!    matched) and the provenance names only shipped nodes;
//! 2. matched nodes agree with their pattern node's label and satisfy
//!    its condition;
//! 3. the answer's structure is a prefix of *some* document satisfying
//!    the source's declared tree type (labels permitted, upper
//!    multiplicity bounds respected — lower bounds cannot be checked on
//!    a prefix);
//! 4. anchored answers (`p@n`) are rooted at their anchor.
//!
//! Lies that pass these checks (e.g. a consistently truncated answer)
//! are caught later as contradictions with accumulated knowledge — see
//! `Session::answer_resilient`.

use crate::error::ValidationError;
use iixml_query::{Answer, MatchKind, PsQuery};
use iixml_tree::{Label, Nid, TreeType};
use std::collections::HashMap;

/// Validates a shipped answer for query `q` (anchored at `at`, `None` =
/// document root) against the source's declared type, if any.
pub fn validate_answer(
    q: &PsQuery,
    ans: &Answer,
    at: Option<Nid>,
    declared: Option<&TreeType>,
) -> Result<(), ValidationError> {
    let Some(t) = &ans.tree else {
        // The empty answer makes no per-node claims.
        return Ok(());
    };
    if let Some(anchor) = at {
        let got = t.nid(t.root());
        if got != anchor {
            return Err(ValidationError::WrongAnchor {
                expected: anchor,
                got,
            });
        }
    } else if let Some(ty) = declared {
        // An un-anchored answer is rooted at the document root, whose
        // label the type constrains.
        if !ty.roots().contains(&t.label(t.root())) {
            return Err(ValidationError::TypeViolation(t.nid(t.root())));
        }
    }
    for node in t.preorder() {
        let nid = t.nid(node);
        match ans.provenance.get(&nid) {
            None => return Err(ValidationError::MissingProvenance(nid)),
            Some(&MatchKind::Matched(m)) => {
                if t.label(node) != q.label(m) {
                    return Err(ValidationError::LabelMismatch(nid));
                }
                if !q.cond_set(m).contains(t.value(node)) {
                    return Err(ValidationError::ConditionViolated(nid));
                }
            }
            // Descendants of a barred match are extracted wholesale;
            // the pattern constrains only their ancestor.
            Some(&MatchKind::BarDescendant(_)) => {}
        }
        if let Some(ty) = declared {
            // Prefix check: each child label must be permitted under the
            // node's label, and non-repeatable labels must not repeat.
            // (Mandatory children may legitimately be missing from a
            // prefix, so lower bounds are not checked.)
            let atom = ty.atom(t.label(node));
            let mut counts: HashMap<Label, usize> = HashMap::new();
            for &c in t.children(node) {
                *counts.entry(t.label(c)).or_default() += 1;
            }
            for (&l, &n) in &counts {
                match atom.mult(l) {
                    None => return Err(ValidationError::TypeViolation(nid)),
                    Some(m) if !m.repeatable() && n > 1 => {
                        return Err(ValidationError::TypeViolation(nid))
                    }
                    Some(_) => {}
                }
            }
        }
    }
    if ans.provenance.len() > t.len() {
        // More provenance entries than shipped nodes: at least one names
        // a node that is not in the tree.
        // `min` rather than `find`: the reported offender must not
        // depend on HashMap iteration order.
        let dangling = ans
            .provenance
            .keys()
            .filter(|&&n| t.by_nid(n).is_none())
            .min()
            .copied()
            .unwrap_or_else(|| t.nid(t.root()));
        return Err(ValidationError::DanglingProvenance(dangling));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{Alphabet, DataTree};
    use iixml_values::{Cond, Rat};

    fn setup() -> (Alphabet, DataTree, PsQuery) {
        let mut alpha = Alphabet::new();
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let mut doc = DataTree::new(Nid(0), r, Rat::ZERO);
        doc.add_child(doc.root(), Nid(1), a, Rat::from(5)).unwrap();
        let q = {
            let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = b.root();
            b.child(root, "a", Cond::lt(Rat::from(10))).unwrap();
            b.build()
        };
        (alpha, doc, q)
    }

    #[test]
    fn genuine_answers_validate() {
        let (_, doc, q) = setup();
        let ans = q.eval(&doc);
        assert_eq!(validate_answer(&q, &ans, None, None), Ok(()));
    }

    #[test]
    fn missing_provenance_is_rejected() {
        let (_, doc, q) = setup();
        let mut ans = q.eval(&doc);
        ans.provenance.remove(&Nid(1));
        assert_eq!(
            validate_answer(&q, &ans, None, None),
            Err(ValidationError::MissingProvenance(Nid(1)))
        );
    }

    #[test]
    fn dangling_provenance_is_rejected() {
        let (_, doc, q) = setup();
        let mut ans = q.eval(&doc);
        ans.provenance.insert(Nid(99), MatchKind::Matched(q.root()));
        assert_eq!(
            validate_answer(&q, &ans, None, None),
            Err(ValidationError::DanglingProvenance(Nid(99)))
        );
    }

    #[test]
    fn condition_violations_are_rejected() {
        let (_, doc, q) = setup();
        let mut ans = q.eval(&doc);
        let t = ans.tree.as_mut().unwrap();
        let node = t.by_nid(Nid(1)).unwrap();
        t.set_value(node, Rat::from(50)); // violates a < 10
        assert_eq!(
            validate_answer(&q, &ans, None, None),
            Err(ValidationError::ConditionViolated(Nid(1)))
        );
    }

    #[test]
    fn wrong_anchor_is_rejected() {
        let (_, doc, q) = setup();
        let ans = q.eval(&doc); // rooted at Nid(0)
        assert_eq!(
            validate_answer(&q, &ans, Some(Nid(7)), None),
            Err(ValidationError::WrongAnchor {
                expected: Nid(7),
                got: Nid(0)
            })
        );
    }
}
