#![warn(missing_docs)]

//! The Webhouse scenario (Section 1): an XML warehouse holding
//! incomplete information about remote documents, enriched by successive
//! queries and able to answer new queries either locally (from the
//! incomplete tree) or by fetching exactly the missing pieces through
//! the mediator.
//!
//! * [`Source`] simulates a remote XML document: a materialized data
//!   tree (with persistent node ids) plus an optional declared tree
//!   type. This substitutes for live web sources (see DESIGN.md): it
//!   answers ps-queries through exactly the same evaluation path.
//! * [`Session`] is the per-document state: the accumulated incomplete
//!   tree maintained by Algorithm Refine (plus the folded-in tree type).
//! * [`Webhouse`] manages named sessions and implements the two
//!   courses of action of the introduction: answer as best possible
//!   from local knowledge (sure/possible modalities), or complete the
//!   answer with non-redundant local queries against the source.

use iixml_core::{IncompleteTree, ItreeError, QueryOnIncomplete, Refiner};
use iixml_mediator::Mediator;
use iixml_query::{Answer, PsQuery};
use iixml_tree::{Alphabet, DataTree, TreeType};
use std::collections::HashMap;
use std::fmt;

/// A simulated remote XML document.
#[derive(Clone, Debug)]
pub struct Source {
    tree: DataTree,
    ty: Option<TreeType>,
    /// Number of queries answered (for experiment accounting).
    pub queries_served: usize,
    /// Total answer nodes shipped (for experiment accounting).
    pub nodes_shipped: usize,
}

impl Source {
    /// Wraps a document with an optional declared type.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the document does not satisfy the declared
    /// type — sources are assumed valid.
    pub fn new(tree: DataTree, ty: Option<TreeType>) -> Source {
        if let Some(t) = &ty {
            debug_assert!(t.accepts(&tree), "source does not satisfy its type");
        }
        Source {
            tree,
            ty,
            queries_served: 0,
            nodes_shipped: 0,
        }
    }

    /// The declared tree type, if any.
    pub fn declared_type(&self) -> Option<&TreeType> {
        self.ty.as_ref()
    }

    /// The live document (tests and experiments peek at it; the
    /// webhouse itself only sees query answers).
    pub fn document(&self) -> &DataTree {
        &self.tree
    }

    /// Answers a ps-query (with persistent node ids, Remark 2.4).
    pub fn answer(&mut self, q: &PsQuery) -> Answer {
        let a = q.eval(&self.tree);
        self.queries_served += 1;
        self.nodes_shipped += a.len();
        a
    }

    /// Replaces the document (a source update). The webhouse reacts by
    /// reinitializing its knowledge (Section 5's discussion).
    pub fn update(&mut self, tree: DataTree) {
        if let Some(t) = &self.ty {
            debug_assert!(t.accepts(&tree), "updated source violates its type");
        }
        self.tree = tree;
    }
}

/// How a query against the webhouse was answered.
#[derive(Debug)]
pub enum LocalAnswer {
    /// The local information suffices: this is *the* answer
    /// (`None` = the empty answer).
    Complete(Option<DataTree>),
    /// Only partial information is available: a description of the
    /// possible answers (Theorem 3.14).
    Partial(QueryOnIncomplete),
}

impl LocalAnswer {
    /// Was the query fully answered locally?
    pub fn is_complete(&self) -> bool {
        matches!(self, LocalAnswer::Complete(_))
    }
}

/// Per-document webhouse state.
pub struct Session {
    alpha: Alphabet,
    source: Source,
    refiner: Refiner,
    /// Queries answered from local knowledge without contacting the
    /// source.
    pub answered_locally: usize,
    /// Local queries issued by the mediator.
    pub mediator_queries: usize,
    /// Label used in per-source metric names (set by
    /// [`Webhouse::register`]; anonymous sessions report as `anon`).
    obs_label: String,
}

impl Session {
    /// Opens a session on a source. The source's declared type (if any)
    /// is folded into the initial knowledge (Theorem 3.5).
    pub fn open(alpha: Alphabet, source: Source) -> Session {
        let mut refiner = Refiner::new(&alpha);
        if let Some(ty) = &source.ty {
            let restricted = iixml_core::type_intersect::restrict_to_type(refiner.current(), ty);
            refiner = Refiner::from_tree(restricted);
        }
        Session {
            alpha,
            source,
            refiner,
            answered_locally: 0,
            mediator_queries: 0,
            obs_label: "anon".to_string(),
        }
    }

    /// Sets the label under which this session reports per-source
    /// metrics (`webhouse.fetch_ns.<label>`).
    pub fn set_obs_label(&mut self, label: impl Into<String>) {
        self.obs_label = label.into();
    }

    /// The accumulated incomplete tree.
    pub fn knowledge(&self) -> &IncompleteTree {
        self.refiner.current()
    }

    /// The known prefix of the document.
    pub fn data_tree(&self) -> Option<DataTree> {
        self.refiner.data_tree()
    }

    /// The source (for experiment accounting).
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// Asks the source directly and refines the local knowledge with
    /// the query-answer pair (Theorem 3.4).
    pub fn fetch(&mut self, q: &PsQuery) -> Result<Answer, ItreeError> {
        // Per-source refine latency; the name is dynamic, so this takes
        // the registry lock — acceptable at fetch granularity.
        let _span = if iixml_obs::enabled() {
            Some(iixml_obs::time(&format!(
                "webhouse.fetch_ns.{}",
                self.obs_label
            )))
        } else {
            None
        };
        let ans = self.source.answer(q);
        self.refiner.refine(&self.alpha, q, &ans)?;
        Ok(ans)
    }

    /// Like [`Session::fetch`], but first asks Proposition 3.13's
    /// auxiliary path queries (all conditions cleared). This pins every
    /// node the query's conditions touch as a data node, guaranteeing
    /// the incomplete tree stays polynomial in the whole query sequence
    /// — the paper's standing size-control strategy.
    pub fn fetch_with_auxiliaries(&mut self, q: &PsQuery) -> Result<Answer, ItreeError> {
        for aux in iixml_mediator::auxiliary_queries(q) {
            let a = self.source.answer(&aux);
            self.refiner.refine(&self.alpha, &aux, &a)?;
        }
        self.fetch(q)
    }

    /// Answers from local knowledge only (Section 3.3): complete when
    /// possible, otherwise a description of the possible answers.
    pub fn answer_locally(&mut self, q: &PsQuery) -> LocalAnswer {
        let qt = self.knowledge().query(q);
        if qt.fully_answerable() {
            self.answered_locally += 1;
            LocalAnswer::Complete(qt.the_answer())
        } else {
            LocalAnswer::Partial(qt)
        }
    }

    /// Answers exactly, contacting the source only for the missing
    /// pieces (Section 3.4): generates a non-redundant completion,
    /// executes it, and refines local knowledge with the now-exact
    /// answer.
    pub fn answer_with_mediation(&mut self, q: &PsQuery) -> Result<Option<DataTree>, String> {
        if let LocalAnswer::Complete(a) = self.answer_locally(q) {
            return Ok(a);
        }
        let completion = {
            let med = Mediator::new(self.refiner.current());
            med.complete(q)
        };
        self.mediator_queries += completion.queries.len();
        let mut known = self
            .data_tree()
            .unwrap_or_else(|| self.source.tree.subtree(self.source.tree.root()));
        // When nothing is known, the completion holds `q@root`: execute
        // against the source directly.
        let shipped = completion.execute(&self.source.tree, &mut known)?;
        self.source.queries_served += completion.queries.len();
        self.source.nodes_shipped += shipped;
        let answer = q.eval(&known);
        // The answer is now exact; fold it back into the knowledge.
        self.refiner
            .refine(&self.alpha, q, &answer)
            .map_err(|e| e.to_string())?;
        Ok(answer.tree)
    }

    /// Reacts to a source update: knowledge is reinitialized to the
    /// declared type (the paper's conservative policy for dynamic
    /// sources).
    pub fn reinitialize(&mut self) {
        let mut refiner = Refiner::new(&self.alpha);
        if let Some(ty) = &self.source.ty {
            let restricted = iixml_core::type_intersect::restrict_to_type(refiner.current(), ty);
            refiner = Refiner::from_tree(restricted);
        }
        self.refiner = refiner;
        self.answered_locally = 0;
        self.mediator_queries = 0;
    }

    /// Applies a source update then reinitializes.
    pub fn source_updated(&mut self, new_tree: DataTree) {
        self.source.update(new_tree);
        self.reinitialize();
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("knowledge_size", &self.knowledge().size())
            .field("answered_locally", &self.answered_locally)
            .finish()
    }
}

/// A session variant that tracks knowledge *conjunctively*
/// (Theorem 3.8): each fetched query-answer pair appends one layer, so
/// the representation stays linear in the whole query stream
/// (Corollary 3.9) no matter how adversarial the queries are — the
/// paper's answer to Algorithm Refine's exponential worst case.
///
/// The price (Theorem 3.10): questions that quantify over `rep` —
/// emptiness, certain/possible answers — become NP-hard, so this session
/// only offers the PTIME operations: membership and per-layer access.
pub struct ConjunctiveSession {
    alpha: Alphabet,
    source: Source,
    conj: iixml_core::ConjunctiveTree,
}

impl ConjunctiveSession {
    /// Opens a conjunctive session; the declared type (if any) becomes
    /// the base layer.
    pub fn open(alpha: Alphabet, source: Source) -> ConjunctiveSession {
        let mut conj = iixml_core::ConjunctiveTree::new(&alpha);
        if let Some(ty) = &source.ty {
            let labels: Vec<_> = alpha.labels().collect();
            let names: Vec<&str> = labels.iter().map(|&l| alpha.name(l)).collect();
            let universal = IncompleteTree::universal(&labels, &names);
            let base = iixml_core::type_intersect::restrict_to_type(&universal, ty);
            conj = iixml_core::ConjunctiveTree::from_layers(vec![base]);
        }
        ConjunctiveSession {
            alpha,
            source,
            conj,
        }
    }

    /// Asks the source and appends the constraint layer (Refine⁺).
    pub fn fetch(&mut self, q: &PsQuery) -> Result<Answer, ItreeError> {
        let ans = self.source.answer(q);
        self.conj.refine(&self.alpha, q, &ans)?;
        Ok(ans)
    }

    /// The accumulated conjunctive knowledge.
    pub fn knowledge(&self) -> &iixml_core::ConjunctiveTree {
        &self.conj
    }

    /// Representation size (linear in the query stream, Corollary 3.9).
    pub fn size(&self) -> usize {
        self.conj.size()
    }

    /// PTIME membership: could the source document be `t`?
    pub fn could_be(&self, t: &DataTree) -> bool {
        self.conj.contains(t)
    }

    /// The source (for experiment accounting).
    pub fn source(&self) -> &Source {
        &self.source
    }
}

/// A named collection of sessions — the warehouse itself.
#[derive(Default)]
pub struct Webhouse {
    sessions: HashMap<String, Session>,
}

impl Webhouse {
    /// An empty webhouse.
    pub fn new() -> Webhouse {
        Webhouse::default()
    }

    /// Registers a source under a name.
    pub fn register(&mut self, name: impl Into<String>, alpha: Alphabet, source: Source) {
        let name = name.into();
        let mut session = Session::open(alpha, source);
        session.set_obs_label(&name);
        self.sessions.insert(name, session);
    }

    /// Accesses a session.
    pub fn session(&mut self, name: &str) -> Option<&mut Session> {
        self.sessions.get_mut(name)
    }

    /// Iterates over (name, session).
    pub fn sessions(&self) -> impl Iterator<Item = (&String, &Session)> {
        self.sessions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{Mult, Nid, TreeTypeBuilder};
    use iixml_values::{Cond, Rat};

    fn catalog_setup() -> (Alphabet, TreeType, DataTree) {
        let mut alpha = Alphabet::new();
        let ty = TreeTypeBuilder::new(&mut alpha)
            .root("catalog")
            .rule("catalog", &[("product", Mult::Plus)])
            .rule(
                "product",
                &[
                    ("name", Mult::One),
                    ("price", Mult::One),
                    ("cat", Mult::One),
                    ("picture", Mult::Star),
                ],
            )
            .rule("cat", &[("subcat", Mult::One)])
            .build()
            .unwrap();
        let mut t = DataTree::new(Nid(0), alpha.get("catalog").unwrap(), Rat::ZERO);
        let mut next = 1u64;
        let mut add = |t: &mut DataTree, nm: i64, pr: i64, sub: i64, pics: &[i64]| {
            let root = t.root();
            let p = t
                .add_child(root, Nid(next), alpha.get("product").unwrap(), Rat::ZERO)
                .unwrap();
            next += 1;
            t.add_child(p, Nid(next), alpha.get("name").unwrap(), Rat::from(nm))
                .unwrap();
            next += 1;
            t.add_child(p, Nid(next), alpha.get("price").unwrap(), Rat::from(pr))
                .unwrap();
            next += 1;
            let c = t
                .add_child(p, Nid(next), alpha.get("cat").unwrap(), Rat::from(1))
                .unwrap();
            next += 1;
            t.add_child(c, Nid(next), alpha.get("subcat").unwrap(), Rat::from(sub))
                .unwrap();
            next += 1;
            for &v in pics {
                t.add_child(p, Nid(next), alpha.get("picture").unwrap(), Rat::from(v))
                    .unwrap();
                next += 1;
            }
        };
        add(&mut t, 100, 120, 10, &[501]);
        add(&mut t, 101, 199, 10, &[]);
        add(&mut t, 102, 175, 11, &[]);
        add(&mut t, 103, 250, 10, &[502]);
        (alpha, ty, t)
    }

    fn query1(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::True).unwrap();
        b.build()
    }

    fn query3(alpha: &mut Alphabet) -> PsQuery {
        // Cheap cameras with at least one picture.
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(150))).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::eq(Rat::from(10))).unwrap();
        b.child(p, "picture", Cond::True).unwrap();
        b.build()
    }

    fn query4(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::eq(Rat::from(10))).unwrap();
        b.build()
    }

    #[test]
    fn example_3_4_scenario() {
        // The paper's "More catalog queries" example: after Query 1 (and
        // its sub-200 products), Query 3 (cheap cameras with pictures)
        // needs picture info not fetched by Query 1, so it is not yet
        // answerable; after also asking a picture-fetching query it is.
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let q3 = query3(&mut alpha);
        let q4 = query4(&mut alpha);
        let mut session = Session::open(alpha.clone(), Source::new(doc, Some(ty)));

        session.fetch(&q1).unwrap();
        // Query 4 (all cameras) is NOT fully answerable: expensive
        // cameras are unknown.
        let a4 = session.answer_locally(&q4);
        assert!(!a4.is_complete());
        match a4 {
            LocalAnswer::Partial(p) => {
                // But a partial answer exists: possible answers are
                // described, and the sure part contains the two known
                // cheap cameras.
                assert!(p.possible_nonempty());
            }
            _ => unreachable!(),
        }
        // Query 3 involves pictures, which q1 did not fetch: partial.
        let a3 = session.answer_locally(&q3);
        assert!(!a3.is_complete());
        // Mediation answers q3 exactly.
        let exact = session.answer_with_mediation(&q3).unwrap();
        let expected = q3.eval(session.source().document()).tree;
        match (exact, expected) {
            (Some(a), Some(b)) => assert!(a.same_tree(&b)),
            (a, b) => assert_eq!(a.is_none(), b.is_none()),
        }
        // After mediation, q3 is locally answerable.
        assert!(session.answer_locally(&q3).is_complete());
    }

    #[test]
    fn repeat_query_needs_no_fetch() {
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let mut session = Session::open(alpha.clone(), Source::new(doc, Some(ty)));
        session.fetch(&q1).unwrap();
        let before = session.source().queries_served;
        let a = session.answer_locally(&q1);
        assert!(a.is_complete());
        assert_eq!(session.source().queries_served, before);
        match a {
            LocalAnswer::Complete(Some(t)) => {
                assert!(t.same_tree(q1.eval(session.source().document()).tree.as_ref().unwrap()));
            }
            _ => panic!("expected a complete nonempty answer"),
        }
    }

    #[test]
    fn source_update_reinitializes() {
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let mut session = Session::open(alpha.clone(), Source::new(doc, Some(ty.clone())));
        session.fetch(&q1).unwrap();
        assert!(session.data_tree().is_some());
        // New document: one product only.
        let mut doc2 = DataTree::new(Nid(100), alpha.get("catalog").unwrap(), Rat::ZERO);
        let p = doc2
            .add_child(
                doc2.root(),
                Nid(101),
                alpha.get("product").unwrap(),
                Rat::ZERO,
            )
            .unwrap();
        doc2.add_child(p, Nid(102), alpha.get("name").unwrap(), Rat::from(1))
            .unwrap();
        doc2.add_child(p, Nid(103), alpha.get("price").unwrap(), Rat::from(10))
            .unwrap();
        let c = doc2
            .add_child(p, Nid(104), alpha.get("cat").unwrap(), Rat::from(1))
            .unwrap();
        doc2.add_child(c, Nid(105), alpha.get("subcat").unwrap(), Rat::from(3))
            .unwrap();
        session.source_updated(doc2);
        assert!(session.data_tree().is_none(), "knowledge reset");
        // Old answers are forgotten; fetching again works on the new doc.
        let a = session.fetch(&q1).unwrap();
        assert_eq!(a.len(), 6); // catalog + product + name,price,cat,subcat
    }

    #[test]
    fn auxiliary_fetching_controls_size_on_adversarial_streams() {
        // Example 3.2's stream against a live source: plain fetching
        // doubles the knowledge per query; auxiliary-aided fetching
        // stays flat (Proposition 3.13).
        let mut alpha = Alphabet::new();
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut doc = DataTree::new(Nid(0), r, Rat::ZERO);
        doc.add_child(doc.root(), Nid(1), a, Rat::from(100))
            .unwrap();
        doc.add_child(doc.root(), Nid(2), b, Rat::from(200))
            .unwrap();
        let make_query = |alpha: &mut Alphabet, i: i64| {
            let mut bld = PsQueryBuilder::new(alpha, "root", Cond::True);
            let root = bld.root();
            bld.child(root, "a", Cond::eq(Rat::from(i))).unwrap();
            bld.child(root, "b", Cond::eq(Rat::from(i))).unwrap();
            bld.build()
        };
        let mut plain = Session::open(alpha.clone(), Source::new(doc.clone(), None));
        let mut aided = Session::open(alpha.clone(), Source::new(doc.clone(), None));
        for i in 1..=6 {
            let q = make_query(&mut alpha, i);
            plain.fetch(&q).unwrap();
            aided.fetch_with_auxiliaries(&q).unwrap();
        }
        assert!(
            aided.knowledge().size() * 4 < plain.knowledge().size(),
            "aided {} vs plain {}",
            aided.knowledge().size(),
            plain.knowledge().size()
        );
        // Both still track the source.
        assert!(plain.knowledge().contains(&doc));
        assert!(aided.knowledge().contains(&doc));
    }

    #[test]
    fn conjunctive_session_stays_linear_under_adversarial_streams() {
        // Build the Example 3.2 adversarial query stream against a real
        // source; the conjunctive session's size must grow by a constant
        // per query while still tracking the source exactly.
        let mut alpha = Alphabet::new();
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut doc = DataTree::new(Nid(0), r, Rat::ZERO);
        doc.add_child(doc.root(), Nid(1), a, Rat::from(100))
            .unwrap();
        doc.add_child(doc.root(), Nid(2), b, Rat::from(200))
            .unwrap();
        let mut session = ConjunctiveSession::open(alpha.clone(), Source::new(doc.clone(), None));
        let mut sizes = Vec::new();
        for i in 1..=10i64 {
            let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = bld.root();
            bld.child(root, "a", Cond::eq(Rat::from(i))).unwrap();
            bld.child(root, "b", Cond::eq(Rat::from(i))).unwrap();
            let q = bld.build();
            session.fetch(&q).unwrap();
            sizes.push(session.size());
        }
        let d = sizes[1] - sizes[0];
        for w in sizes.windows(2) {
            assert_eq!(w[1] - w[0], d, "linear growth: {sizes:?}");
        }
        // Membership still exact.
        assert!(session.could_be(&doc));
        let mut other = doc.clone();
        let aref = other.by_nid(Nid(1)).unwrap();
        other.set_value(aref, Rat::from(3));
        // Value 3 on node 1 contradicts the (pinned-by-nothing)…
        // actually node 1 is never pinned (all answers empty), but a=3
        // with b… query 3 asked a=3 AND b=3: doc has b=200 ≠ 3, so the
        // answer is still empty — consistent!
        assert!(session.could_be(&other));
        let mut excluded = doc.clone();
        let aref = excluded.by_nid(Nid(1)).unwrap();
        let bref = excluded.by_nid(Nid(2)).unwrap();
        excluded.set_value(aref, Rat::from(3));
        excluded.set_value(bref, Rat::from(3));
        assert!(!session.could_be(&excluded), "q3 would have answered");
    }

    #[test]
    fn webhouse_manages_sessions() {
        let (alpha, ty, doc) = catalog_setup();
        let mut wh = Webhouse::new();
        wh.register(
            "shop",
            alpha.clone(),
            Source::new(doc.clone(), Some(ty.clone())),
        );
        wh.register("mirror", alpha.clone(), Source::new(doc, Some(ty)));
        assert_eq!(wh.sessions().count(), 2);
        let mut a2 = alpha.clone();
        let q1 = query1(&mut a2);
        wh.session("shop").unwrap().fetch(&q1).unwrap();
        assert!(wh.session("shop").unwrap().data_tree().is_some());
        assert!(wh.session("mirror").unwrap().data_tree().is_none());
        assert!(wh.session("nope").is_none());
    }

    #[test]
    fn declared_type_strengthens_answers() {
        // With the DTD folded in, the webhouse knows every product has
        // exactly one price — so after q1, the *certain* part of a price
        // query on a known product is stronger than without the type.
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let mut with_ty = Session::open(alpha.clone(), Source::new(doc.clone(), Some(ty)));
        let mut without_ty = Session::open(alpha.clone(), Source::new(doc, None));
        with_ty.fetch(&q1).unwrap();
        without_ty.fetch(&q1).unwrap();
        // Query: all products and their names (no price filter).
        let q_names = {
            let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
            let root = b.root();
            let p = b.child(root, "product", Cond::True).unwrap();
            b.child(p, "name", Cond::True).unwrap();
            b.build()
        };
        let at = with_ty.knowledge().query(&q_names);
        let an = without_ty.knowledge().query(&q_names);
        // With the type: every product certainly has a name, so the
        // answer is certainly nonempty (the known products are there).
        assert!(at.certain_nonempty());
        // Both agree it's possibly nonempty.
        assert!(an.possible_nonempty());
    }
}
