#![warn(missing_docs)]

//! The Webhouse scenario (Section 1): an XML warehouse holding
//! incomplete information about remote documents, enriched by successive
//! queries and able to answer new queries either locally (from the
//! incomplete tree) or by fetching exactly the missing pieces through
//! the mediator.
//!
//! * [`Source`] simulates a remote XML document: a materialized data
//!   tree (with persistent node ids) plus an optional declared tree
//!   type. This substitutes for live web sources (see DESIGN.md): it
//!   answers ps-queries through exactly the same evaluation path.
//! * [`SourceEndpoint`] abstracts the source boundary so the session
//!   loop is written once against a *fallible* interface;
//!   [`FaultySource`] wraps a source with a deterministic, seeded fault
//!   injector for chaos testing.
//! * [`Session`] is the per-document state: the accumulated incomplete
//!   tree maintained by Algorithm Refine (plus the folded-in tree type).
//! * [`Webhouse`] manages named sessions and implements the two
//!   courses of action of the introduction: answer as best possible
//!   from local knowledge (sure/possible modalities), or complete the
//!   answer with non-redundant local queries against the source.
//!
//! # Fault model
//!
//! The paper assumes sources that always answer fully and correctly;
//! this crate drops that assumption. Every source interaction goes
//! through a retry loop ([`RetryPolicy`]: capped exponential backoff
//! with deterministic jitter, per-query budget) and every shipped
//! answer is validated ([`validate::validate_answer`]) against the
//! query pattern and the source's declared type before it is grafted
//! into the knowledge. [`Session::answer_resilient`] then guarantees an
//! outcome for every query:
//!
//! * **complete** — mediation succeeded; the exact answer.
//! * **degraded** — the source stayed unavailable after retries; the
//!   local partial answer (Theorem 3.14), optionally relaxed (§3.2)
//!   to a bounded size, is returned with the cause attached.
//! * **quarantined** — the accumulated knowledge was caught lying
//!   (a refine contradiction, `rep = ∅`, or a vanished anchor — the
//!   signatures of a source updated mid-session, Section 5). The
//!   session reinitializes to the declared type and retries once; if
//!   the retry also fails the degraded local answer reflects the fresh
//!   knowledge.

pub mod endpoint;
pub mod error;
pub mod retry;
pub mod validate;

pub use endpoint::{FaultCounts, FaultPlan, FaultySource, LatentSource, Source, SourceEndpoint};
pub use error::{SourceError, ValidationError, WebhouseError};
pub use iixml_store::{FlushPolicy, RecoveryStatus, StoreError};
pub use retry::RetryPolicy;

use iixml_core::{IncompleteTree, QueryOnIncomplete, Refiner};
use iixml_gen::rng::DetRng;
use iixml_mediator::{CompletionError, Mediator};
use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_query::{Answer, PsQuery};
use iixml_store::{RecoveryMode, SessionJournal};
use iixml_tree::{Alphabet, DataTree, Nid};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Source queries retried after a retryable failure.
static OBS_RETRIES: LazyCounter = LazyCounter::new(keys::WEBHOUSE_RETRIES);
/// Source failures observed (pre-retry; includes validation rejects).
static OBS_SOURCE_ERRORS: LazyCounter = LazyCounter::new(keys::WEBHOUSE_SOURCE_ERRORS);
/// Answers rejected by validation before grafting.
static OBS_VALIDATION_REJECTS: LazyCounter = LazyCounter::new(keys::WEBHOUSE_VALIDATION_REJECTS);
/// Queries that fell back to the degraded (local partial) path.
static OBS_DEGRADED: LazyCounter = LazyCounter::new(keys::WEBHOUSE_DEGRADED_ANSWERS);
/// Sessions quarantined (knowledge discarded and reinitialized).
static OBS_QUARANTINES: LazyCounter = LazyCounter::new(keys::WEBHOUSE_QUARANTINES);
/// Backoff pauses (ns), simulated or slept.
static OBS_BACKOFF_NS: LazyHistogram = LazyHistogram::new(keys::WEBHOUSE_BACKOFF_NS);
/// Wall time of executing a completion's local queries (same key as
/// `Completion::execute`, which the session loop supersedes — the
/// metric survives either execution path).
static OBS_EXECUTE_NS: LazyHistogram = LazyHistogram::new(keys::MEDIATOR_EXECUTE_NS);
/// Local queries sent to sources (shared key, as above).
static OBS_LOCAL_QUERIES: LazyCounter = LazyCounter::new(keys::MEDIATOR_LOCAL_QUERIES);
/// Answer nodes shipped by sources (shared key, as above).
static OBS_SHIPPED: LazyCounter = LazyCounter::new(keys::MEDIATOR_SHIPPED_NODES);
/// Containment-cache lookups before fetch/mediation.
static OBS_CONTAIN_CHECKS: LazyCounter = LazyCounter::new(keys::MEDIATOR_CONTAINMENT_CHECKS);
/// Containment-cache lookups answered from recorded knowledge.
static OBS_CONTAIN_HITS: LazyCounter = LazyCounter::new(keys::MEDIATOR_CONTAINMENT_HITS);
/// Cache candidates pruned on skeleton signature alone.
static OBS_CONTAIN_FAST_REJECTS: LazyCounter =
    LazyCounter::new(keys::MEDIATOR_CONTAINMENT_FAST_REJECTS);

/// Reads the containment-cache toggle from the environment: on unless
/// [`keys::ENV_CONTAIN_CACHE`] is set to an off value.
fn contain_cache_enabled_from_env() -> bool {
    match std::env::var(keys::ENV_CONTAIN_CACHE) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// Why a query was answered from degraded local knowledge instead of
/// exactly via mediation.
#[derive(Debug)]
pub enum DegradeCause {
    /// The source stayed unavailable after retries; local knowledge is
    /// intact, just not sufficient for an exact answer.
    SourceUnavailable(SourceError),
    /// The knowledge was caught contradicting the source (updated
    /// document, undetected lie); it was quarantined and reinitialized,
    /// and a fresh mediation attempt also failed.
    Quarantined(WebhouseError),
    /// The durability layer failed (journal append or snapshot); the
    /// knowledge is intact but the session stopped journaling, and the
    /// resilient path answers locally rather than risk compounding the
    /// fault with source traffic it cannot record.
    Durability(StoreError),
}

/// How a query against the webhouse was answered.
#[derive(Debug)]
pub enum LocalAnswer {
    /// The local information suffices: this is *the* answer
    /// (`None` = the empty answer).
    Complete(Option<DataTree>),
    /// Only partial information is available: a description of the
    /// possible answers (Theorem 3.14).
    Partial(QueryOnIncomplete),
    /// The source failed and the session fell back to local knowledge
    /// (possibly after a quarantine) — the fault-model outcome of
    /// [`Session::answer_resilient`].
    Degraded {
        /// The best available description of the possible answers.
        partial: QueryOnIncomplete,
        /// Which recovery path was taken.
        cause: DegradeCause,
    },
}

impl LocalAnswer {
    /// Was the query fully answered locally?
    pub fn is_complete(&self) -> bool {
        matches!(self, LocalAnswer::Complete(_))
    }

    /// Did the query take a degraded recovery path?
    pub fn is_degraded(&self) -> bool {
        matches!(self, LocalAnswer::Degraded { .. })
    }
}

/// Per-document webhouse state, generic over the source endpoint (the
/// default, [`Source`], never fails; wrap it in [`FaultySource`] for
/// chaos testing).
pub struct Session<E: SourceEndpoint = Source> {
    alpha: Alphabet,
    source: E,
    refiner: Refiner,
    retry: RetryPolicy,
    jitter: DetRng,
    relax_target: Option<usize>,
    /// Queries answered from local knowledge without contacting the
    /// source.
    pub answered_locally: usize,
    /// Local queries issued by the mediator.
    pub mediator_queries: usize,
    /// Times the knowledge was quarantined and reinitialized after
    /// catching a contradiction (Section 5's dynamic-source policy).
    pub quarantines: usize,
    /// Label used in per-source metric names (set by
    /// [`Webhouse::register`]; anonymous sessions report as `anon`).
    obs_label: String,
    /// Durable journal, when the session was opened with
    /// [`Session::open_journaled`] or [`Session::recover`].
    journal: Option<SessionJournal>,
    /// Set when a journal append failed on a path that could not return
    /// it (quarantine inside `answer_resilient`); journaling stops and
    /// the fault is surfaced by the next fallible operation.
    journal_fault: Option<StoreError>,
    /// Containment-keyed answer cache: exact answers already obtained,
    /// replayed for queries they provably subsume (DESIGN.md §15).
    contain_cache: iixml_contain::AnswerCache,
    /// Toggle for the cache ([`keys::ENV_CONTAIN_CACHE`],
    /// [`Session::set_contain_cache`]). Off = every query pays the
    /// full reference path.
    contain_enabled: bool,
}

/// What [`Session::recover`] found in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Clean, or degraded with the number of dropped records.
    pub status: RecoveryStatus,
    /// Journal records reflected in the recovered knowledge.
    pub replayed: usize,
    /// Refine records among them.
    pub refines: usize,
    /// Quarantine records among them.
    pub quarantines: usize,
    /// Source-update records among them.
    pub source_updates: usize,
    /// Whether a torn tail (interrupted final write) was truncated.
    pub torn_tail: bool,
    /// Snapshot the replay started from, if any (records covered).
    pub from_snapshot: Option<u64>,
    /// Whether the journal was beyond continuation and was rebased: a
    /// fresh log seeded with the recovered state (snapshot-only
    /// recovery after losing the log's head).
    pub rebased: bool,
}

impl<E: SourceEndpoint> Session<E> {
    /// Opens a session on a source. The source's declared type (if any)
    /// is folded into the initial knowledge (Theorem 3.5).
    pub fn open(alpha: Alphabet, source: E) -> Session<E> {
        let mut refiner = Refiner::new(&alpha);
        if let Some(ty) = source.declared_type() {
            let restricted = iixml_core::type_intersect::restrict_to_type(refiner.current(), ty);
            refiner = Refiner::from_tree(restricted);
        }
        Session {
            alpha,
            source,
            refiner,
            retry: RetryPolicy::default(),
            jitter: DetRng::new(0xB0FF),
            relax_target: None,
            answered_locally: 0,
            mediator_queries: 0,
            quarantines: 0,
            obs_label: "anon".to_string(),
            journal: None,
            journal_fault: None,
            contain_cache: iixml_contain::AnswerCache::new(),
            contain_enabled: contain_cache_enabled_from_env(),
        }
    }

    /// Opens a session whose event stream (open, refine, source-update,
    /// quarantine) is durably journaled in `dir`, with periodic
    /// snapshots. After a crash, [`Session::recover`] rebuilds the
    /// session from the journal.
    pub fn open_journaled(
        alpha: Alphabet,
        source: E,
        dir: &Path,
    ) -> Result<Session<E>, WebhouseError> {
        Session::open_journaled_with_io(alpha, source, dir, iixml_store::StoreIo::from_env())
    }

    /// [`Session::open_journaled`] through an explicit store I/O
    /// backend — chaos tests and the CLI's `--disk-fault-at`
    /// walkthrough inject write-path faults here. A fault poisons the
    /// journal writer; the session then degrades explicitly
    /// ([`DegradeCause::Durability`], sticky [`Session::journal_fault`])
    /// instead of silently losing records.
    pub fn open_journaled_with_io(
        alpha: Alphabet,
        source: E,
        dir: &Path,
        io: iixml_store::StoreIo,
    ) -> Result<Session<E>, WebhouseError> {
        let mut session = Session::open(alpha, source);
        let mut journal = SessionJournal::create_with_io(dir, io)?;
        journal.log_open(&session.alpha, session.refiner.current())?;
        session.journal = Some(journal);
        Ok(session)
    }

    /// Rebuilds a journaled session after a crash: verifies the journal,
    /// truncates a torn tail, replays the surviving records through
    /// Refine — from the newest valid snapshot when one exists — and
    /// reopens the journal for further appends. Mid-log corruption
    /// degrades to the longest verified prefix (the §5 posture: detect,
    /// then fall back to a sound state) and is reported as
    /// [`RecoveryStatus::Recovered`] in the returned report.
    ///
    /// `source` is the fresh endpoint for the same document (live
    /// connections do not survive a crash).
    pub fn recover(dir: &Path, source: E) -> Result<(Session<E>, RecoveryReport), WebhouseError> {
        let rec = iixml_store::recover(dir, RecoveryMode::Degrade)?;
        let mut report = RecoveryReport {
            status: rec.status,
            replayed: rec.replayed,
            refines: rec.refines,
            quarantines: rec.quarantines,
            source_updates: rec.source_updates,
            torn_tail: rec.torn_tail,
            from_snapshot: rec.from_snapshot,
            rebased: false,
        };
        let mut session = Session {
            alpha: rec.alpha,
            source,
            refiner: rec.refiner,
            retry: RetryPolicy::default(),
            jitter: DetRng::new(0xB0FF),
            relax_target: None,
            answered_locally: 0,
            mediator_queries: 0,
            quarantines: rec.quarantines,
            obs_label: "anon".to_string(),
            journal: None,
            journal_fault: None,
            // Recovery starts with a cold cache: answers are not
            // journaled, and a miss is always sound.
            contain_cache: iixml_contain::AnswerCache::new(),
            contain_enabled: contain_cache_enabled_from_env(),
        };
        match rec.journal {
            Some(journal) => session.journal = Some(journal),
            None => {
                // The log's head is gone; the state came from a snapshot
                // alone. Rebase: wipe the dead log and seed a fresh one
                // with an open record (true declared-type initial, so
                // future quarantine records replay correctly) plus an
                // immediate snapshot of the recovered state.
                report.rebased = true;
                wipe_journal_dir(dir)?;
                let mut initial = Refiner::new(&session.alpha);
                if let Some(ty) = session.source.declared_type() {
                    let restricted =
                        iixml_core::type_intersect::restrict_to_type(initial.current(), ty);
                    initial = Refiner::from_tree(restricted);
                }
                let mut journal = SessionJournal::create(dir)?;
                journal.log_open(&session.alpha, initial.current())?;
                journal.snapshot_now(&session.alpha, session.refiner.current())?;
                session.journal = Some(journal);
            }
        }
        Ok((session, report))
    }

    /// The durability barrier for batched journaling: flushes any
    /// group-committed records still in memory. After this returns
    /// `Ok`, every journaled event is on disk — call it at commit
    /// points when a batched [`FlushPolicy`] is active (the default
    /// policy flushes every record, making this a no-op).
    pub fn sync_journal(&mut self) -> Result<(), WebhouseError> {
        self.take_journal_fault()?;
        match &mut self.journal {
            Some(journal) => journal.sync().map_err(WebhouseError::Store),
            None => Ok(()),
        }
    }

    /// Replaces the journal's group-commit flush policy (see
    /// [`FlushPolicy`]). No-op on un-journaled sessions.
    pub fn set_journal_flush_policy(&mut self, policy: FlushPolicy) -> Result<(), WebhouseError> {
        match &mut self.journal {
            Some(journal) => journal
                .set_flush_policy(policy)
                .map_err(WebhouseError::Store),
            None => Ok(()),
        }
    }

    /// The durability fault that stopped journaling, if any. Once set,
    /// the session keeps operating un-journaled (availability over
    /// durability); the next fallible operation also returns the fault.
    pub fn journal_fault(&self) -> Option<&StoreError> {
        self.journal_fault.as_ref()
    }

    /// Surfaces (and clears) a sticky journal fault recorded on a path
    /// that could not return it.
    fn take_journal_fault(&mut self) -> Result<(), WebhouseError> {
        match self.journal_fault.take() {
            Some(e) => Err(WebhouseError::Store(e)),
            None => Ok(()),
        }
    }

    /// Journals one event through `log`, then snapshots if due. On
    /// failure, journaling stops (the log must not develop gaps) and the
    /// error is returned for the caller to surface.
    fn journal_event(
        &mut self,
        log: impl FnOnce(&mut SessionJournal, &Alphabet) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let Some(mut journal) = self.journal.take() else {
            return Ok(());
        };
        log(&mut journal, &self.alpha)?;
        journal.maybe_snapshot(&self.alpha, self.refiner.current())?;
        self.journal = Some(journal);
        Ok(())
    }

    /// One journaled Refine step: the durability check runs *before* the
    /// in-memory step, so a step the journal cannot spell is rejected
    /// with the knowledge unchanged, and the append lands *after* (redo
    /// order: a crash in between loses only the never-acknowledged
    /// step).
    fn apply_refine(&mut self, q: &PsQuery, ans: &Answer) -> Result<(), WebhouseError> {
        if self.journal.is_some() {
            SessionJournal::check_journalable(&self.alpha, q, ans)?;
        }
        self.refiner.refine(&self.alpha, q, ans)?;
        self.journal_event(|j, alpha| j.log_refine(alpha, q, ans))
            .map_err(WebhouseError::Store)
    }

    /// Sets the label under which this session reports per-source
    /// metrics (`webhouse.fetch_ns.<label>`).
    pub fn set_obs_label(&mut self, label: impl Into<String>) {
        self.obs_label = label.into();
    }

    /// Enables or disables the containment-keyed answer cache at
    /// runtime (overriding [`keys::ENV_CONTAIN_CACHE`]). Disabling
    /// does not drop recorded entries; re-enabling resumes with them.
    pub fn set_contain_cache(&mut self, enabled: bool) {
        self.contain_enabled = enabled;
    }

    /// Containment-cache lookups performed by this session.
    pub fn containment_checks(&self) -> u64 {
        self.contain_cache.checks()
    }

    /// Containment-cache lookups answered from recorded knowledge.
    pub fn containment_hits(&self) -> u64 {
        self.contain_cache.hits()
    }

    /// Cache candidates pruned on skeleton signature alone.
    pub fn containment_fast_rejects(&self) -> u64 {
        self.contain_cache.fast_rejects()
    }

    /// Tries the containment cache; the returned answer (if any) is
    /// byte-identical to what the source would ship for `q` right now.
    fn cache_lookup(&mut self, q: &PsQuery) -> Option<Answer> {
        if !self.contain_enabled {
            return None;
        }
        let rejects_before = self.contain_cache.fast_rejects();
        OBS_CONTAIN_CHECKS.incr();
        let hit = self.contain_cache.lookup(q);
        OBS_CONTAIN_FAST_REJECTS.add(self.contain_cache.fast_rejects() - rejects_before);
        if hit.is_some() {
            OBS_CONTAIN_HITS.incr();
        }
        hit
    }

    /// Records an exact source answer for future containment hits.
    fn cache_record(&mut self, q: &PsQuery, ans: &Answer) {
        if self.contain_enabled {
            self.contain_cache.record(q, ans);
        }
    }

    /// Sets how source failures are retried (default:
    /// [`RetryPolicy::default`]).
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Reseeds the deterministic backoff jitter (sessions with the same
    /// seed and fault stream replay identical backoff schedules).
    pub fn set_backoff_seed(&mut self, seed: u64) {
        self.jitter = DetRng::new(seed);
    }

    /// Caps the knowledge size used for degraded answers: when set,
    /// degraded partial answers are computed on a copy relaxed (§3.2's
    /// graceful-information-loss heuristic) below `target` — bounded
    /// answer cost in exchange for a coarser description.
    pub fn set_relax_target(&mut self, target: Option<usize>) {
        self.relax_target = target;
    }

    /// The session's frozen alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alpha
    }

    /// Mutable alphabet access, for callers that parse query text
    /// against this session (parsing may intern labels the session has
    /// not seen; unknown labels simply never match existing symbols).
    pub fn alphabet_mut(&mut self) -> &mut Alphabet {
        &mut self.alpha
    }

    /// The accumulated incomplete tree.
    pub fn knowledge(&self) -> &IncompleteTree {
        self.refiner.current()
    }

    /// The known prefix of the document.
    pub fn data_tree(&self) -> Option<DataTree> {
        self.refiner.data_tree()
    }

    /// The source endpoint (for experiment accounting).
    pub fn source(&self) -> &E {
        &self.source
    }

    /// The source endpoint, mutably (chaos experiments adjust fault
    /// plans or peek fault counters mid-run).
    pub fn source_mut(&mut self) -> &mut E {
        &mut self.source
    }

    /// Asks the endpoint one local query (`at = None` means the
    /// document root), validating every shipped answer and retrying
    /// retryable failures per the session's [`RetryPolicy`].
    fn ask_source(&mut self, q: &PsQuery, at: Option<Nid>) -> Result<Answer, WebhouseError> {
        let mut spent_ns: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            let outcome = match at {
                None => self.source.ask(q),
                Some(n) => self.source.ask_at(q, n),
            };
            let err = match outcome {
                Ok(ans) => {
                    match validate::validate_answer(q, &ans, at, self.source.declared_type()) {
                        Ok(()) => return Ok(ans),
                        Err(v) => {
                            OBS_VALIDATION_REJECTS.incr();
                            SourceError::InvalidAnswer(v)
                        }
                    }
                }
                Err(e) => e,
            };
            OBS_SOURCE_ERRORS.incr();
            attempt += 1;
            if !err.retryable() || attempt >= self.retry.max_attempts {
                return Err(WebhouseError::Source(err));
            }
            let pause = self.retry.backoff_ns(attempt - 1, &mut self.jitter);
            if spent_ns.saturating_add(pause) > self.retry.budget_ns {
                return Err(WebhouseError::Source(err));
            }
            spent_ns += pause;
            OBS_BACKOFF_NS.observe(pause);
            OBS_RETRIES.incr();
            if self.retry.sleep {
                std::thread::sleep(std::time::Duration::from_nanos(pause));
            }
        }
    }

    /// Asks the source directly and refines the local knowledge with
    /// the query-answer pair (Theorem 3.4). Source failures are retried
    /// per the session's [`RetryPolicy`]; answers are validated before
    /// refinement, and refinement is transactional (an error leaves the
    /// knowledge unchanged).
    pub fn fetch(&mut self, q: &PsQuery) -> Result<Answer, WebhouseError> {
        self.take_journal_fault()?;
        // Per-source refine latency; the name is dynamic, so this takes
        // the registry lock — acceptable at fetch granularity.
        let _span = if iixml_obs::enabled() {
            Some(iixml_obs::time(&keys::webhouse_fetch_ns(&self.obs_label)))
        } else {
            None
        };
        // A containment hit replays the recorded answer instead of
        // contacting the source; the refine input — and therefore the
        // knowledge and journal bytes — are identical either way.
        if let Some(ans) = self.cache_lookup(q) {
            self.apply_refine(q, &ans)?;
            return Ok(ans);
        }
        let ans = self.ask_source(q, None)?;
        self.apply_refine(q, &ans)?;
        self.cache_record(q, &ans);
        Ok(ans)
    }

    /// Like [`Session::fetch`], but first asks Proposition 3.13's
    /// auxiliary path queries (all conditions cleared). This pins every
    /// node the query's conditions touch as a data node, guaranteeing
    /// the incomplete tree stays polynomial in the whole query sequence
    /// — the paper's standing size-control strategy.
    pub fn fetch_with_auxiliaries(&mut self, q: &PsQuery) -> Result<Answer, WebhouseError> {
        for aux in iixml_mediator::auxiliary_queries(q) {
            match self.cache_lookup(&aux) {
                Some(a) => self.apply_refine(&aux, &a)?,
                None => {
                    let a = self.ask_source(&aux, None)?;
                    self.apply_refine(&aux, &a)?;
                    self.cache_record(&aux, &a);
                }
            }
        }
        self.fetch(q)
    }

    /// Answers from local knowledge only (Section 3.3): complete when
    /// possible, otherwise a description of the possible answers.
    pub fn answer_locally(&mut self, q: &PsQuery) -> LocalAnswer {
        let qt = self.knowledge().query(q);
        if qt.fully_answerable() {
            self.answered_locally += 1;
            LocalAnswer::Complete(qt.the_answer())
        } else {
            LocalAnswer::Partial(qt)
        }
    }

    /// Answers exactly, contacting the source only for the missing
    /// pieces (Section 3.4): generates a non-redundant completion,
    /// executes its local queries through the endpoint (each validated
    /// and retried per the session's policy), and refines local
    /// knowledge with the now-exact answer. On any error the knowledge
    /// is left unchanged.
    pub fn answer_with_mediation(
        &mut self,
        q: &PsQuery,
    ) -> Result<Option<DataTree>, WebhouseError> {
        self.take_journal_fault()?;
        // A containment hit proves the knowledge already determines
        // `q` exactly (a recorded query subsuming `q` was refined in),
        // so the reference path below would answer locally without
        // refining; replaying the recorded answer skips the local
        // incomplete-tree evaluation too. Byte-identical knowledge is
        // pinned by tests/containment_props.rs.
        if let Some(ans) = self.cache_lookup(q) {
            self.answered_locally += 1;
            return Ok(ans.tree);
        }
        if let LocalAnswer::Complete(a) = self.answer_locally(q) {
            return Ok(a);
        }
        let completion = {
            let med = Mediator::new(self.refiner.current());
            med.complete(q)
        };
        self.mediator_queries += completion.queries.len();
        let _span = OBS_EXECUTE_NS.time();
        OBS_LOCAL_QUERIES.add(completion.queries.len() as u64);
        // Graft each (validated) answer into the known prefix; when
        // nothing is known the completion holds `q@root` and the first
        // answer becomes the prefix.
        let mut known = self.data_tree();
        for lq in &completion.queries {
            let ans = self.ask_source(&lq.query, lq.at)?;
            OBS_SHIPPED.add(ans.len() as u64);
            let Some(t) = ans.tree else { continue };
            match &mut known {
                Some(k) => k
                    .graft(&t)
                    .map_err(|reason| CompletionError::Graft { reason })?,
                slot @ None => *slot = Some(t),
            }
        }
        let answer = match &known {
            Some(k) => q.eval(k),
            None => Answer {
                tree: None,
                provenance: HashMap::new(),
            },
        };
        // The answer is now exact; fold it back into the knowledge.
        self.apply_refine(q, &answer)?;
        self.cache_record(q, &answer);
        Ok(answer.tree)
    }

    /// Answers with mediation, *always* producing an answer (the fault
    /// model's end-to-end guarantee):
    ///
    /// * mediation succeeds → [`LocalAnswer::Complete`];
    /// * the source stays unavailable (timeouts/transients/poisoned
    ///   answers exhausting retries) → [`LocalAnswer::Degraded`] with
    ///   the intact local partial answer;
    /// * the knowledge is caught lying — a refine contradiction,
    ///   `rep = ∅`, a vanished anchor, or a graft conflict — →
    ///   quarantine: the knowledge is reinitialized to the declared
    ///   type (Section 5) and mediation retried once; a second failure
    ///   degrades on the fresh knowledge.
    pub fn answer_resilient(&mut self, q: &PsQuery) -> LocalAnswer {
        let mut last_poison: Option<WebhouseError> = None;
        for _round in 0..2 {
            match self.answer_with_mediation(q) {
                Ok(a) => {
                    // A lie can slip past validation (e.g. a consistent
                    // truncation) and only surface as an unsatisfiable
                    // representation: rep = ∅ while a real document
                    // obviously exists.
                    if self.knowledge().is_empty() {
                        last_poison = Some(WebhouseError::Contradiction);
                        self.quarantine();
                        continue;
                    }
                    return LocalAnswer::Complete(a);
                }
                Err(WebhouseError::Source(e)) if !e.signals_update() => {
                    OBS_DEGRADED.incr();
                    return LocalAnswer::Degraded {
                        partial: self.partial_answer(q),
                        cause: DegradeCause::SourceUnavailable(e),
                    };
                }
                Err(WebhouseError::Store(e)) => {
                    // Durability faults do not poison the knowledge:
                    // answer locally, do not quarantine.
                    OBS_DEGRADED.incr();
                    return LocalAnswer::Degraded {
                        partial: self.partial_answer(q),
                        cause: DegradeCause::Durability(e),
                    };
                }
                Err(e) => {
                    last_poison = Some(e);
                    self.quarantine();
                }
            }
        }
        OBS_DEGRADED.incr();
        LocalAnswer::Degraded {
            partial: self.partial_answer(q),
            // The loop only falls through after quarantine rounds, which
            // always set a poison; a contradiction is the conservative
            // reading if that invariant ever breaks.
            cause: DegradeCause::Quarantined(last_poison.unwrap_or(WebhouseError::Contradiction)),
        }
    }

    /// The local partial answer, computed on a relaxed copy of the
    /// knowledge when a relax target is set.
    fn partial_answer(&self, q: &PsQuery) -> QueryOnIncomplete {
        match self.relax_target {
            Some(target) if self.knowledge().size() > target => {
                iixml_mediator::relax(self.knowledge(), target).query(q)
            }
            _ => self.knowledge().query(q),
        }
    }

    fn quarantine(&mut self) {
        self.quarantines += 1;
        OBS_QUARANTINES.incr();
        self.reset_knowledge();
        if let Err(e) = self.journal_event(|j, _| j.log_quarantine()) {
            self.journal_fault = Some(e);
        }
    }

    /// Reacts to a source update: knowledge is reinitialized to the
    /// declared type (the paper's conservative policy for dynamic
    /// sources).
    pub fn reinitialize(&mut self) {
        self.reset_knowledge();
        if let Err(e) = self.journal_event(|j, _| j.log_source_update()) {
            self.journal_fault = Some(e);
        }
    }

    /// Discards the knowledge and restarts from the declared type
    /// (shared by quarantine and source update, which journal different
    /// records).
    fn reset_knowledge(&mut self) {
        let ty = self.source.declared_type().cloned();
        let mut refiner = Refiner::new(&self.alpha);
        if let Some(ty) = &ty {
            let restricted = iixml_core::type_intersect::restrict_to_type(refiner.current(), ty);
            refiner = Refiner::from_tree(restricted);
        }
        self.refiner = refiner;
        self.answered_locally = 0;
        self.mediator_queries = 0;
        // Cache invalidation rule (DESIGN.md §15): recorded answers
        // describe the *old* document/knowledge; drop them whenever
        // the knowledge restarts (quarantine, source update).
        self.contain_cache.clear();
    }
}

impl Session<Source> {
    /// Applies a source update then reinitializes.
    pub fn source_updated(&mut self, new_tree: DataTree) {
        self.source.update(new_tree);
        self.reinitialize();
    }
}

/// Removes journal segments and snapshots from `dir` (the rebase path:
/// the log was beyond continuation and is being reseeded).
fn wipe_journal_dir(dir: &Path) -> Result<(), StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if (name.starts_with("seg-") && name.ends_with(".wal"))
            || (name.starts_with("snap-") && (name.ends_with(".snap") || name.ends_with(".tmp")))
        {
            let path = entry.path();
            std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
        }
    }
    Ok(())
}

impl<E: SourceEndpoint> fmt::Debug for Session<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("knowledge_size", &self.knowledge().size())
            .field("answered_locally", &self.answered_locally)
            .field("quarantines", &self.quarantines)
            .finish()
    }
}

/// A session variant that tracks knowledge *conjunctively*
/// (Theorem 3.8): each fetched query-answer pair appends one layer, so
/// the representation stays linear in the whole query stream
/// (Corollary 3.9) no matter how adversarial the queries are — the
/// paper's answer to Algorithm Refine's exponential worst case.
///
/// The price (Theorem 3.10): questions that quantify over `rep` —
/// emptiness, certain/possible answers — become NP-hard, so this session
/// only offers the PTIME operations: membership and per-layer access.
pub struct ConjunctiveSession {
    alpha: Alphabet,
    source: Source,
    conj: iixml_core::ConjunctiveTree,
}

impl ConjunctiveSession {
    /// Opens a conjunctive session; the declared type (if any) becomes
    /// the base layer.
    pub fn open(alpha: Alphabet, source: Source) -> ConjunctiveSession {
        let mut conj = iixml_core::ConjunctiveTree::new(&alpha);
        if let Some(ty) = source.declared_type() {
            let labels: Vec<_> = alpha.labels().collect();
            let names: Vec<&str> = labels.iter().map(|&l| alpha.name(l)).collect();
            let universal = IncompleteTree::universal(&labels, &names);
            let base = iixml_core::type_intersect::restrict_to_type(&universal, ty);
            conj = iixml_core::ConjunctiveTree::from_layers(vec![base]);
        }
        ConjunctiveSession {
            alpha,
            source,
            conj,
        }
    }

    /// Asks the source and appends the constraint layer (Refine⁺).
    pub fn fetch(&mut self, q: &PsQuery) -> Result<Answer, iixml_core::ItreeError> {
        let ans = self.source.answer(q);
        self.conj.refine(&self.alpha, q, &ans)?;
        Ok(ans)
    }

    /// The accumulated conjunctive knowledge.
    pub fn knowledge(&self) -> &iixml_core::ConjunctiveTree {
        &self.conj
    }

    /// Representation size (linear in the query stream, Corollary 3.9).
    pub fn size(&self) -> usize {
        self.conj.size()
    }

    /// PTIME membership: could the source document be `t`?
    pub fn could_be(&self, t: &DataTree) -> bool {
        self.conj.contains(t)
    }

    /// The source (for experiment accounting).
    pub fn source(&self) -> &Source {
        &self.source
    }
}

/// A named collection of sessions — the warehouse itself. Generic over
/// the endpoint like [`Session`]; the default is the reliable
/// [`Source`].
pub struct Webhouse<E: SourceEndpoint = Source> {
    sessions: HashMap<String, Session<E>>,
}

impl<E: SourceEndpoint> Default for Webhouse<E> {
    fn default() -> Webhouse<E> {
        Webhouse {
            sessions: HashMap::new(),
        }
    }
}

impl<E: SourceEndpoint> Webhouse<E> {
    /// An empty webhouse.
    pub fn new() -> Webhouse<E> {
        Webhouse::default()
    }

    /// Registers a source under a name.
    pub fn register(&mut self, name: impl Into<String>, alpha: Alphabet, source: E) {
        let name = name.into();
        let mut session = Session::open(alpha, source);
        session.set_obs_label(&name);
        self.sessions.insert(name, session);
    }

    /// Registers a source whose session journals durably into `dir`
    /// (see [`Session::open_journaled`]).
    pub fn register_journaled(
        &mut self,
        name: impl Into<String>,
        alpha: Alphabet,
        source: E,
        dir: &Path,
    ) -> Result<(), WebhouseError> {
        let name = name.into();
        let mut session = Session::open_journaled(alpha, source, dir)?;
        session.set_obs_label(&name);
        self.sessions.insert(name, session);
        Ok(())
    }

    /// Re-registers a crashed journaled session from its journal (see
    /// [`Session::recover`]), returning what recovery found.
    pub fn recover_session(
        &mut self,
        name: impl Into<String>,
        dir: &Path,
        source: E,
    ) -> Result<RecoveryReport, WebhouseError> {
        let name = name.into();
        let (mut session, report) = Session::recover(dir, source)?;
        session.set_obs_label(&name);
        self.sessions.insert(name, session);
        Ok(report)
    }

    /// Recovers many crashed journaled sessions concurrently on the
    /// `iixml-par` pool, one task per journal — a webhouse with N
    /// independent sessions restarts in roughly 1/min(N, threads) of
    /// the sequential time. Recovery order is irrelevant (journals are
    /// independent) but results come back in session-name order and are
    /// byte-identical at any pool width, width 1 included. All-or-
    /// nothing: if any journal fails to recover, the first error (in
    /// name order) is returned and no session is registered.
    pub fn recover_sessions(
        &mut self,
        journals: Vec<(String, PathBuf, E)>,
    ) -> Result<Vec<(String, RecoveryReport)>, WebhouseError>
    where
        E: Send,
    {
        let mut journals = journals;
        journals.sort_by(|a, b| a.0.cmp(&b.0));
        let recovered = iixml_par::par_map(journals, 1, |(name, dir, source)| {
            (name, Session::recover(&dir, source))
        });
        let mut reports = Vec::with_capacity(recovered.len());
        let mut sessions = Vec::with_capacity(recovered.len());
        for (name, result) in recovered {
            let (mut session, report) = result?;
            session.set_obs_label(&name);
            reports.push((name.clone(), report));
            sessions.push((name, session));
        }
        for (name, session) in sessions {
            self.sessions.insert(name, session);
        }
        Ok(reports)
    }

    /// Accesses a session.
    pub fn session(&mut self, name: &str) -> Option<&mut Session<E>> {
        self.sessions.get_mut(name)
    }

    /// Iterates over (name, session).
    pub fn sessions(&self) -> impl Iterator<Item = (&String, &Session<E>)> {
        self.sessions.iter()
    }

    /// Iterates mutably over (name, session) — for callers that need to
    /// sync or reconfigure every session (e.g. a server draining at
    /// shutdown). Iteration order is unspecified; order-sensitive
    /// callers must sort by name.
    pub fn sessions_mut(&mut self) -> impl Iterator<Item = (&String, &mut Session<E>)> {
        self.sessions.iter_mut()
    }

    /// Unregisters and returns a session (e.g. a server closing it on
    /// client request). The caller decides what happens to its journal.
    pub fn remove_session(&mut self, name: &str) -> Option<Session<E>> {
        self.sessions.remove(name)
    }

    /// Answers `q` on every registered session, one task per source, so
    /// latency-bound sources overlap instead of queueing (the
    /// multi-source completion of Section 1 run concurrently). Results
    /// come back in session-name order regardless of thread count, and
    /// each session keeps its own retry budget, backoff jitter stream,
    /// and fault seed — a fan-out at any width replays byte-for-byte
    /// from the same seeds.
    pub fn fan_out(&mut self, q: &PsQuery) -> Vec<(String, LocalAnswer)>
    where
        E: Send,
    {
        let mut items: Vec<(&String, &mut Session<E>)> = self.sessions.iter_mut().collect();
        items.sort_by(|a, b| a.0.cmp(b.0));
        iixml_par::par_map(items, 1, |(name, session)| {
            (name.clone(), session.answer_resilient(q))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{Mult, Nid, TreeType, TreeTypeBuilder};
    use iixml_values::{Cond, Rat};

    fn catalog_setup() -> (Alphabet, TreeType, DataTree) {
        let mut alpha = Alphabet::new();
        let ty = TreeTypeBuilder::new(&mut alpha)
            .root("catalog")
            .rule("catalog", &[("product", Mult::Plus)])
            .rule(
                "product",
                &[
                    ("name", Mult::One),
                    ("price", Mult::One),
                    ("cat", Mult::One),
                    ("picture", Mult::Star),
                ],
            )
            .rule("cat", &[("subcat", Mult::One)])
            .build()
            .unwrap();
        let mut t = DataTree::new(Nid(0), alpha.get("catalog").unwrap(), Rat::ZERO);
        let mut next = 1u64;
        let mut add = |t: &mut DataTree, nm: i64, pr: i64, sub: i64, pics: &[i64]| {
            let root = t.root();
            let p = t
                .add_child(root, Nid(next), alpha.get("product").unwrap(), Rat::ZERO)
                .unwrap();
            next += 1;
            t.add_child(p, Nid(next), alpha.get("name").unwrap(), Rat::from(nm))
                .unwrap();
            next += 1;
            t.add_child(p, Nid(next), alpha.get("price").unwrap(), Rat::from(pr))
                .unwrap();
            next += 1;
            let c = t
                .add_child(p, Nid(next), alpha.get("cat").unwrap(), Rat::from(1))
                .unwrap();
            next += 1;
            t.add_child(c, Nid(next), alpha.get("subcat").unwrap(), Rat::from(sub))
                .unwrap();
            next += 1;
            for &v in pics {
                t.add_child(p, Nid(next), alpha.get("picture").unwrap(), Rat::from(v))
                    .unwrap();
                next += 1;
            }
        };
        add(&mut t, 100, 120, 10, &[501]);
        add(&mut t, 101, 199, 10, &[]);
        add(&mut t, 102, 175, 11, &[]);
        add(&mut t, 103, 250, 10, &[502]);
        (alpha, ty, t)
    }

    fn query1(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::True).unwrap();
        b.build()
    }

    fn query3(alpha: &mut Alphabet) -> PsQuery {
        // Cheap cameras with at least one picture.
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(150))).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::eq(Rat::from(10))).unwrap();
        b.child(p, "picture", Cond::True).unwrap();
        b.build()
    }

    fn query4(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::eq(Rat::from(10))).unwrap();
        b.build()
    }

    #[test]
    fn example_3_4_scenario() {
        // The paper's "More catalog queries" example: after Query 1 (and
        // its sub-200 products), Query 3 (cheap cameras with pictures)
        // needs picture info not fetched by Query 1, so it is not yet
        // answerable; after also asking a picture-fetching query it is.
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let q3 = query3(&mut alpha);
        let q4 = query4(&mut alpha);
        let mut session = Session::open(alpha.clone(), Source::new(doc, Some(ty)));

        session.fetch(&q1).unwrap();
        // Query 4 (all cameras) is NOT fully answerable: expensive
        // cameras are unknown.
        let a4 = session.answer_locally(&q4);
        assert!(!a4.is_complete());
        match a4 {
            LocalAnswer::Partial(p) => {
                // But a partial answer exists: possible answers are
                // described, and the sure part contains the two known
                // cheap cameras.
                assert!(p.possible_nonempty());
            }
            _ => unreachable!(),
        }
        // Query 3 involves pictures, which q1 did not fetch: partial.
        let a3 = session.answer_locally(&q3);
        assert!(!a3.is_complete());
        // Mediation answers q3 exactly.
        let exact = session.answer_with_mediation(&q3).unwrap();
        let expected = q3.eval(session.source().document()).tree;
        match (exact, expected) {
            (Some(a), Some(b)) => assert!(a.same_tree(&b)),
            (a, b) => assert_eq!(a.is_none(), b.is_none()),
        }
        // After mediation, q3 is locally answerable.
        assert!(session.answer_locally(&q3).is_complete());
    }

    #[test]
    fn repeat_query_needs_no_fetch() {
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let mut session = Session::open(alpha.clone(), Source::new(doc, Some(ty)));
        session.fetch(&q1).unwrap();
        let before = session.source().queries_served;
        let a = session.answer_locally(&q1);
        assert!(a.is_complete());
        assert_eq!(session.source().queries_served, before);
        match a {
            LocalAnswer::Complete(Some(t)) => {
                assert!(t.same_tree(q1.eval(session.source().document()).tree.as_ref().unwrap()));
            }
            _ => panic!("expected a complete nonempty answer"),
        }
    }

    #[test]
    fn source_update_reinitializes() {
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let mut session = Session::open(alpha.clone(), Source::new(doc, Some(ty.clone())));
        session.fetch(&q1).unwrap();
        assert!(session.data_tree().is_some());
        // New document: one product only.
        let mut doc2 = DataTree::new(Nid(100), alpha.get("catalog").unwrap(), Rat::ZERO);
        let p = doc2
            .add_child(
                doc2.root(),
                Nid(101),
                alpha.get("product").unwrap(),
                Rat::ZERO,
            )
            .unwrap();
        doc2.add_child(p, Nid(102), alpha.get("name").unwrap(), Rat::from(1))
            .unwrap();
        doc2.add_child(p, Nid(103), alpha.get("price").unwrap(), Rat::from(10))
            .unwrap();
        let c = doc2
            .add_child(p, Nid(104), alpha.get("cat").unwrap(), Rat::from(1))
            .unwrap();
        doc2.add_child(c, Nid(105), alpha.get("subcat").unwrap(), Rat::from(3))
            .unwrap();
        session.source_updated(doc2);
        assert!(session.data_tree().is_none(), "knowledge reset");
        // Old answers are forgotten; fetching again works on the new doc.
        let a = session.fetch(&q1).unwrap();
        assert_eq!(a.len(), 6); // catalog + product + name,price,cat,subcat
    }

    #[test]
    fn auxiliary_fetching_controls_size_on_adversarial_streams() {
        // Example 3.2's stream against a live source: plain fetching
        // doubles the knowledge per query; auxiliary-aided fetching
        // stays flat (Proposition 3.13).
        let mut alpha = Alphabet::new();
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut doc = DataTree::new(Nid(0), r, Rat::ZERO);
        doc.add_child(doc.root(), Nid(1), a, Rat::from(100))
            .unwrap();
        doc.add_child(doc.root(), Nid(2), b, Rat::from(200))
            .unwrap();
        let make_query = |alpha: &mut Alphabet, i: i64| {
            let mut bld = PsQueryBuilder::new(alpha, "root", Cond::True);
            let root = bld.root();
            bld.child(root, "a", Cond::eq(Rat::from(i))).unwrap();
            bld.child(root, "b", Cond::eq(Rat::from(i))).unwrap();
            bld.build()
        };
        let mut plain = Session::open(alpha.clone(), Source::new(doc.clone(), None));
        let mut aided = Session::open(alpha.clone(), Source::new(doc.clone(), None));
        for i in 1..=6 {
            let q = make_query(&mut alpha, i);
            plain.fetch(&q).unwrap();
            aided.fetch_with_auxiliaries(&q).unwrap();
        }
        assert!(
            aided.knowledge().size() * 4 < plain.knowledge().size(),
            "aided {} vs plain {}",
            aided.knowledge().size(),
            plain.knowledge().size()
        );
        // Both still track the source.
        assert!(plain.knowledge().contains(&doc));
        assert!(aided.knowledge().contains(&doc));
    }

    #[test]
    fn conjunctive_session_stays_linear_under_adversarial_streams() {
        // Build the Example 3.2 adversarial query stream against a real
        // source; the conjunctive session's size must grow by a constant
        // per query while still tracking the source exactly.
        let mut alpha = Alphabet::new();
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut doc = DataTree::new(Nid(0), r, Rat::ZERO);
        doc.add_child(doc.root(), Nid(1), a, Rat::from(100))
            .unwrap();
        doc.add_child(doc.root(), Nid(2), b, Rat::from(200))
            .unwrap();
        let mut session = ConjunctiveSession::open(alpha.clone(), Source::new(doc.clone(), None));
        let mut sizes = Vec::new();
        for i in 1..=10i64 {
            let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
            let root = bld.root();
            bld.child(root, "a", Cond::eq(Rat::from(i))).unwrap();
            bld.child(root, "b", Cond::eq(Rat::from(i))).unwrap();
            let q = bld.build();
            session.fetch(&q).unwrap();
            sizes.push(session.size());
        }
        let d = sizes[1] - sizes[0];
        for w in sizes.windows(2) {
            assert_eq!(w[1] - w[0], d, "linear growth: {sizes:?}");
        }
        // Membership still exact.
        assert!(session.could_be(&doc));
        let mut other = doc.clone();
        let aref = other.by_nid(Nid(1)).unwrap();
        other.set_value(aref, Rat::from(3));
        // Value 3 on node 1 contradicts the (pinned-by-nothing)…
        // actually node 1 is never pinned (all answers empty), but a=3
        // with b… query 3 asked a=3 AND b=3: doc has b=200 ≠ 3, so the
        // answer is still empty — consistent!
        assert!(session.could_be(&other));
        let mut excluded = doc.clone();
        let aref = excluded.by_nid(Nid(1)).unwrap();
        let bref = excluded.by_nid(Nid(2)).unwrap();
        excluded.set_value(aref, Rat::from(3));
        excluded.set_value(bref, Rat::from(3));
        assert!(!session.could_be(&excluded), "q3 would have answered");
    }

    #[test]
    fn webhouse_manages_sessions() {
        let (alpha, ty, doc) = catalog_setup();
        let mut wh = Webhouse::new();
        wh.register(
            "shop",
            alpha.clone(),
            Source::new(doc.clone(), Some(ty.clone())),
        );
        wh.register("mirror", alpha.clone(), Source::new(doc, Some(ty)));
        assert_eq!(wh.sessions().count(), 2);
        let mut a2 = alpha.clone();
        let q1 = query1(&mut a2);
        wh.session("shop").unwrap().fetch(&q1).unwrap();
        assert!(wh.session("shop").unwrap().data_tree().is_some());
        assert!(wh.session("mirror").unwrap().data_tree().is_none());
        assert!(wh.session("nope").is_none());
    }

    #[test]
    fn declared_type_strengthens_answers() {
        // With the DTD folded in, the webhouse knows every product has
        // exactly one price — so after q1, the *certain* part of a price
        // query on a known product is stronger than without the type.
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let mut with_ty = Session::open(alpha.clone(), Source::new(doc.clone(), Some(ty)));
        let mut without_ty = Session::open(alpha.clone(), Source::new(doc, None));
        with_ty.fetch(&q1).unwrap();
        without_ty.fetch(&q1).unwrap();
        // Query: all products and their names (no price filter).
        let q_names = {
            let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
            let root = b.root();
            let p = b.child(root, "product", Cond::True).unwrap();
            b.child(p, "name", Cond::True).unwrap();
            b.build()
        };
        let at = with_ty.knowledge().query(&q_names);
        let an = without_ty.knowledge().query(&q_names);
        // With the type: every product certainly has a name, so the
        // answer is certainly nonempty (the known products are there).
        assert!(at.certain_nonempty());
        // Both agree it's possibly nonempty.
        assert!(an.possible_nonempty());
    }

    #[test]
    fn persistent_timeouts_degrade_to_the_local_partial_answer() {
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let q3 = query3(&mut alpha);
        let src = Source::new(doc, Some(ty));
        let mut session = Session::open(alpha, FaultySource::new(src, FaultPlan::none(), 7));
        session.set_retry(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        session.fetch(&q1).unwrap();
        let knowledge_before = session.knowledge().size();
        // Source goes dark: every further query times out.
        session.source_mut().set_plan(FaultPlan {
            timeout: 1.0,
            ..FaultPlan::none()
        });
        let a = session.answer_resilient(&q3);
        match a {
            LocalAnswer::Degraded {
                cause: DegradeCause::SourceUnavailable(SourceError::Timeout),
                partial,
            } => {
                // Knowledge from q1 is intact and still describes q3.
                assert!(partial.possible_nonempty());
            }
            other => panic!("expected a degraded answer, got {other:?}"),
        }
        assert_eq!(session.knowledge().size(), knowledge_before);
        assert_eq!(session.quarantines, 0);
        // The source recovers: the same query now completes exactly.
        session.source_mut().set_plan(FaultPlan::none());
        assert!(session.answer_resilient(&q3).is_complete());
    }

    #[test]
    fn transient_faults_are_retried_through() {
        let (mut alpha, ty, doc) = catalog_setup();
        let q1 = query1(&mut alpha);
        let src = Source::new(doc, Some(ty));
        let mut session = Session::open(alpha, FaultySource::new(src, FaultPlan::none(), 11));
        // 30% transient failures, 4 attempts: each query nearly always
        // gets through (p(fail) = 0.3^4 < 1%).
        session.source_mut().set_plan(FaultPlan {
            transient: 0.3,
            ..FaultPlan::none()
        });
        // Cache off so every fetch of the repeated query re-contacts
        // the source and exercises the retry loop.
        session.set_contain_cache(false);
        let mut completed = 0;
        for _ in 0..20 {
            if session.fetch(&q1).is_ok() {
                completed += 1;
            }
        }
        assert!(completed >= 18, "only {completed}/20 completed");
        assert!(session.source().faults.transients > 0, "no faults fired");
    }
}
