//! Typed errors for the fault-tolerant source layer.
//!
//! The paper's mediator (Theorem 3.19) assumes sources that always
//! answer fully and correctly; real sources time out, return partial or
//! schema-violating answers, and get updated mid-session (the Section 5
//! discussion). This module gives every failure mode a name so the
//! webhouse loop can react per cause — retry what is transient,
//! quarantine what signals an update — instead of aborting on a bare
//! string.

use iixml_core::ItreeError;
use iixml_mediator::CompletionError;
use iixml_store::StoreError;
use iixml_tree::Nid;
use std::fmt;

/// A defect found while validating a shipped answer against the query
/// and the source's declared tree type (before grafting it into the
/// session's knowledge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An answer node carries no match provenance (truncated or
    /// fabricated answer).
    MissingProvenance(Nid),
    /// Provenance refers to a node the source did not ship (sloppy
    /// truncation).
    DanglingProvenance(Nid),
    /// A matched node's label disagrees with the query pattern node it
    /// claims to match.
    LabelMismatch(Nid),
    /// A matched node's value violates the query condition it claims to
    /// satisfy.
    ConditionViolated(Nid),
    /// The answer's structure cannot be a prefix of any document
    /// satisfying the source's declared tree type.
    TypeViolation(Nid),
    /// An anchored answer is not rooted at its anchor node.
    WrongAnchor {
        /// The anchor the local query was addressed to.
        expected: Nid,
        /// The root the source actually shipped.
        got: Nid,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingProvenance(n) => {
                write!(f, "answer node {n} has no match provenance")
            }
            ValidationError::DanglingProvenance(n) => {
                write!(f, "provenance names node {n} absent from the answer")
            }
            ValidationError::LabelMismatch(n) => {
                write!(f, "answer node {n} disagrees with its pattern node's label")
            }
            ValidationError::ConditionViolated(n) => {
                write!(f, "answer node {n} violates its pattern node's condition")
            }
            ValidationError::TypeViolation(n) => {
                write!(f, "answer node {n} violates the source's declared type")
            }
            ValidationError::WrongAnchor { expected, got } => {
                write!(f, "answer rooted at {got}, expected anchor {expected}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A failure answering a query at a source endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The source did not answer in time.
    Timeout,
    /// A transient fault (connection reset, 5xx, ...); retrying may
    /// succeed.
    Transient(String),
    /// A local query's anchor node no longer exists at the source — the
    /// signature of a document replaced mid-session.
    MissingAnchor(Nid),
    /// A document does not satisfy the source's declared tree type
    /// (returned by [`crate::Source::try_new`] / `try_update`).
    TypeViolation(String),
    /// The source answered, but the answer failed validation.
    InvalidAnswer(ValidationError),
}

impl SourceError {
    /// May a retry of the same query succeed? Timeouts and transient
    /// faults obviously; a poisoned answer too (flaky sources corrupt
    /// intermittently). A missing anchor or type violation is a property
    /// of the source's state, not of the attempt.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            SourceError::Timeout | SourceError::Transient(_) | SourceError::InvalidAnswer(_)
        )
    }

    /// Does this failure signal that the source document was replaced
    /// (Section 5's dynamic-source discussion)? If so the session's
    /// accumulated knowledge is stale and must be quarantined rather
    /// than merely degraded.
    pub fn signals_update(&self) -> bool {
        matches!(self, SourceError::MissingAnchor(_))
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Timeout => write!(f, "source timed out"),
            SourceError::Transient(why) => write!(f, "transient source error: {why}"),
            SourceError::MissingAnchor(n) => write!(f, "anchor {n} no longer at source"),
            SourceError::TypeViolation(why) => {
                write!(f, "document violates declared type: {why}")
            }
            SourceError::InvalidAnswer(v) => write!(f, "answer rejected: {v}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Any failure of a webhouse operation: the typed hierarchy uniting
/// source faults, refinement errors ([`ItreeError`]) and completion
/// execution errors ([`CompletionError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebhouseError {
    /// The source failed (after retries, where applicable).
    Source(SourceError),
    /// Folding an answer into the knowledge failed — an answer
    /// incompatible with what is already known is the signature of a
    /// source updated mid-session.
    Refine(ItreeError),
    /// Executing a completion's local queries failed.
    Completion(CompletionError),
    /// The accumulated knowledge became unsatisfiable (`rep = ∅`): some
    /// past answer was a lie or the source changed under us.
    Contradiction,
    /// The durability layer failed: a journal append, snapshot, or
    /// recovery error. The in-memory knowledge may be ahead of the
    /// journal; the session stops journaling (see
    /// `Session::journal_fault`) rather than risk a divergent log.
    Store(StoreError),
}

impl WebhouseError {
    /// Does this failure mean the accumulated knowledge can no longer be
    /// trusted (quarantine + reinitialize, Section 5), as opposed to the
    /// source being merely unavailable (degrade to the local partial
    /// answer)?
    pub fn poisons_knowledge(&self) -> bool {
        match self {
            WebhouseError::Source(e) => e.signals_update(),
            WebhouseError::Refine(_) | WebhouseError::Completion(_) => true,
            WebhouseError::Contradiction => true,
            WebhouseError::Store(_) => false,
        }
    }
}

impl fmt::Display for WebhouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebhouseError::Source(e) => write!(f, "{e}"),
            WebhouseError::Refine(e) => write!(f, "refine failed: {e}"),
            WebhouseError::Completion(e) => write!(f, "completion failed: {e}"),
            WebhouseError::Contradiction => {
                write!(f, "knowledge contradicts itself (source updated?)")
            }
            WebhouseError::Store(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl std::error::Error for WebhouseError {}

impl From<SourceError> for WebhouseError {
    fn from(e: SourceError) -> WebhouseError {
        WebhouseError::Source(e)
    }
}

impl From<ItreeError> for WebhouseError {
    fn from(e: ItreeError) -> WebhouseError {
        WebhouseError::Refine(e)
    }
}

impl From<CompletionError> for WebhouseError {
    fn from(e: CompletionError) -> WebhouseError {
        WebhouseError::Completion(e)
    }
}

impl From<StoreError> for WebhouseError {
    fn from(e: StoreError) -> WebhouseError {
        WebhouseError::Store(e)
    }
}
