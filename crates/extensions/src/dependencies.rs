//! The functional/inclusion-dependency encoding of Theorem 4.5:
//! ps-queries extended with branching, data-value (in)equality joins,
//! and negation can express FD and IND violations, so query emptiness
//! over a query-answer history inherits the undecidability of FD+IND
//! implication.
//!
//! A relation `R(A1 … Ak)` is encoded as `root → tuple⋆`,
//! `tuple → A1 … Ak`; `q_φ(T) = ∅` iff the encoded relation satisfies
//! the dependency `φ` — FDs via two branching tuple patterns joined on
//! the left-hand side with `≠` on the right-hand side, INDs via a
//! negated tuple pattern joined to the positive one.
//!
//! Implication itself is undecidable (the theorem's point); this module
//! also provides a *bounded* implication check over small domains used
//! to demonstrate the machinery on classical examples.

use crate::xquery::{Modality, XQuery, XQueryBuilder};
use iixml_tree::{Alphabet, DataTree, Nid};
use iixml_values::{Cond, Rat};

/// A relation instance: `arity` columns, rows of rational values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Number of attributes.
    pub arity: usize,
    /// The tuples.
    pub tuples: Vec<Vec<Rat>>,
}

/// A dependency over attribute indices (0-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Dependency {
    /// Functional dependency `lhs → rhs`.
    Fd {
        /// Determinant attributes.
        lhs: Vec<usize>,
        /// Determined attribute.
        rhs: usize,
    },
    /// Inclusion dependency `R[lhs] ⊆ R[rhs]` (componentwise).
    Ind {
        /// Source attribute list.
        lhs: Vec<usize>,
        /// Target attribute list (same length).
        rhs: Vec<usize>,
    },
}

impl Relation {
    /// Direct satisfaction check (the test oracle).
    pub fn satisfies(&self, dep: &Dependency) -> bool {
        match dep {
            Dependency::Fd { lhs, rhs } => {
                for a in &self.tuples {
                    for b in &self.tuples {
                        if lhs.iter().all(|&i| a[i] == b[i]) && a[*rhs] != b[*rhs] {
                            return false;
                        }
                    }
                }
                true
            }
            Dependency::Ind { lhs, rhs } => self.tuples.iter().all(|a| {
                self.tuples
                    .iter()
                    .any(|b| lhs.iter().zip(rhs).all(|(&i, &j)| a[i] == b[j]))
            }),
        }
    }
}

/// The attribute-name alphabet for an arity.
pub fn alphabet(arity: usize) -> Alphabet {
    let mut names = vec!["root".to_string(), "tuple".to_string()];
    names.extend((0..arity).map(|i| format!("A{i}")));
    Alphabet::from_names(names.iter().map(String::as_str))
}

/// Encodes a relation as a data tree.
pub fn encode_relation(rel: &Relation, alpha: &Alphabet) -> DataTree {
    let root = alpha.get("root").unwrap();
    let tuple = alpha.get("tuple").unwrap();
    let mut t = DataTree::new(Nid(0), root, Rat::ZERO);
    let mut next = 1u64;
    for row in &rel.tuples {
        let root_ref = t.root();
        let tn = t.add_child(root_ref, Nid(next), tuple, Rat::ZERO).unwrap();
        next += 1;
        for (i, &v) in row.iter().enumerate() {
            let attr = alpha.get(&format!("A{i}")).unwrap();
            t.add_child(tn, Nid(next), attr, v).unwrap();
            next += 1;
        }
    }
    t
}

/// The violation query `q_φ`: nonempty on exactly the encodings of
/// relations violating `φ`.
pub fn violation_query(dep: &Dependency, alpha: &mut Alphabet) -> XQuery {
    let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
    let root = b.root();
    match dep {
        Dependency::Fd { lhs, rhs } => {
            // Two tuples agreeing on lhs, disagreeing on rhs.
            let t1 = b.child(root, "tuple", Cond::True, Modality::Plain);
            let t2 = b.child(root, "tuple", Cond::True, Modality::Plain);
            for &i in lhs {
                let (_, x1) = b.child_var(t1, &format!("A{i}"), Cond::True, Modality::Plain);
                let (_, x2) = b.child_var(t2, &format!("A{i}"), Cond::True, Modality::Plain);
                b.join(x1, x2, true);
            }
            let (_, z) = b.child_var(t1, &format!("A{rhs}"), Cond::True, Modality::Plain);
            let (_, w) = b.child_var(t2, &format!("A{rhs}"), Cond::True, Modality::Plain);
            b.join(z, w, false);
        }
        Dependency::Ind { lhs, rhs } => {
            // A tuple whose lhs projection has no rhs counterpart.
            let t1 = b.child(root, "tuple", Cond::True, Modality::Plain);
            let mut outer_vars = Vec::new();
            for &i in lhs {
                let (_, x) = b.child_var(t1, &format!("A{i}"), Cond::True, Modality::Plain);
                outer_vars.push(x);
            }
            let neg = b.child(root, "tuple", Cond::True, Modality::Negated);
            for (&j, &x) in rhs.iter().zip(&outer_vars) {
                let (_, y) = b.child_var(neg, &format!("A{j}"), Cond::True, Modality::Plain);
                b.join(x, y, true);
            }
        }
    }
    b.build()
}

/// Does the encoded relation satisfy `φ`, decided through the violation
/// query? (`q_φ(T) = ∅` ⟺ satisfaction.)
pub fn satisfies_via_query(rel: &Relation, dep: &Dependency) -> bool {
    let mut alpha = alphabet(rel.arity);
    let t = encode_relation(rel, &alpha);
    let q = violation_query(dep, &mut alpha);
    q.eval(&t).is_none()
}

/// Bounded implication check: does every relation over the domain
/// `0..domain` with at most `max_tuples` tuples that satisfies all of
/// `sigma` also satisfy `tau`? (Exact implication is undecidable —
/// Theorem 4.5; this bounded version demonstrates the encoding.)
pub fn implies_bounded(
    arity: usize,
    sigma: &[Dependency],
    tau: &Dependency,
    domain: i64,
    max_tuples: usize,
) -> bool {
    // Enumerate relations as multisets of tuples.
    let tuple_space: Vec<Vec<Rat>> = {
        let mut out: Vec<Vec<Rat>> = vec![Vec::new()];
        for _ in 0..arity {
            let mut next = Vec::new();
            for row in &out {
                for v in 0..domain {
                    let mut r = row.clone();
                    r.push(Rat::from(v));
                    next.push(r);
                }
            }
            out = next;
        }
        out
    };
    fn choose(
        space: &[Vec<Rat>],
        from: usize,
        left: usize,
        acc: &mut Vec<Vec<Rat>>,
        arity: usize,
        sigma: &[Dependency],
        tau: &Dependency,
    ) -> bool {
        let rel = Relation {
            arity,
            tuples: acc.clone(),
        };
        if sigma.iter().all(|d| rel.satisfies(d)) && !rel.satisfies(tau) {
            return false; // counterexample found
        }
        if left == 0 {
            return true;
        }
        for i in from..space.len() {
            acc.push(space[i].clone());
            let ok = choose(space, i, left - 1, acc, arity, sigma, tau);
            acc.pop();
            if !ok {
                return false;
            }
        }
        true
    }
    choose(
        &tuple_space,
        0,
        max_tuples,
        &mut Vec::new(),
        arity,
        sigma,
        tau,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[&[i64]]) -> Relation {
        Relation {
            arity: rows[0].len(),
            tuples: rows
                .iter()
                .map(|r| r.iter().map(|&v| Rat::from(v)).collect())
                .collect(),
        }
    }

    #[test]
    fn fd_queries_match_direct_check() {
        let fd = Dependency::Fd {
            lhs: vec![0],
            rhs: 1,
        };
        let good = rel(&[&[1, 10, 0], &[2, 20, 0], &[1, 10, 5]]);
        let bad = rel(&[&[1, 10, 0], &[1, 20, 0]]);
        assert!(good.satisfies(&fd));
        assert!(!bad.satisfies(&fd));
        assert!(satisfies_via_query(&good, &fd));
        assert!(!satisfies_via_query(&bad, &fd));
    }

    #[test]
    fn composite_fd() {
        let fd = Dependency::Fd {
            lhs: vec![0, 1],
            rhs: 2,
        };
        let good = rel(&[&[1, 1, 7], &[1, 2, 8], &[1, 1, 7]]);
        let bad = rel(&[&[1, 1, 7], &[1, 1, 8]]);
        assert_eq!(satisfies_via_query(&good, &fd), good.satisfies(&fd));
        assert_eq!(satisfies_via_query(&bad, &fd), bad.satisfies(&fd));
        assert!(satisfies_via_query(&good, &fd));
        assert!(!satisfies_via_query(&bad, &fd));
    }

    #[test]
    fn ind_queries_match_direct_check() {
        // R[A0] ⊆ R[A1].
        let ind = Dependency::Ind {
            lhs: vec![0],
            rhs: vec![1],
        };
        let good = rel(&[&[1, 1], &[2, 1], &[1, 2]]);
        let bad = rel(&[&[3, 1], &[1, 1]]);
        assert!(good.satisfies(&ind));
        assert!(!bad.satisfies(&ind));
        assert!(satisfies_via_query(&good, &ind));
        assert!(!satisfies_via_query(&bad, &ind));
    }

    #[test]
    fn binary_ind() {
        // R[A0 A1] ⊆ R[A1 A2].
        let ind = Dependency::Ind {
            lhs: vec![0, 1],
            rhs: vec![1, 2],
        };
        let good = rel(&[&[1, 2, 3], &[0, 1, 2]]);
        assert_eq!(good.satisfies(&ind), satisfies_via_query(&good, &ind));
        let bad = rel(&[&[1, 2, 3]]);
        assert!(!bad.satisfies(&ind));
        assert!(!satisfies_via_query(&bad, &ind));
    }

    #[test]
    fn random_relations_agree() {
        // Deterministic pseudo-random relations; query semantics must
        // track the direct semantics exactly.
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as i64
        };
        let deps = [
            Dependency::Fd {
                lhs: vec![0],
                rhs: 1,
            },
            Dependency::Fd {
                lhs: vec![1],
                rhs: 0,
            },
            Dependency::Ind {
                lhs: vec![0],
                rhs: vec![1],
            },
            Dependency::Ind {
                lhs: vec![1],
                rhs: vec![0],
            },
        ];
        for _ in 0..20 {
            let n = 1 + (rnd() % 4).unsigned_abs() as usize;
            let tuples: Vec<Vec<Rat>> = (0..n)
                .map(|_| vec![Rat::from(rnd() % 3), Rat::from(rnd() % 3)])
                .collect();
            let r = Relation { arity: 2, tuples };
            for d in &deps {
                assert_eq!(
                    r.satisfies(d),
                    satisfies_via_query(&r, d),
                    "disagreement on {r:?} {d:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_implication_examples() {
        // Armstrong transitivity: {A->B, B->C} implies A->C.
        let sigma = [
            Dependency::Fd {
                lhs: vec![0],
                rhs: 1,
            },
            Dependency::Fd {
                lhs: vec![1],
                rhs: 2,
            },
        ];
        let tau = Dependency::Fd {
            lhs: vec![0],
            rhs: 2,
        };
        assert!(implies_bounded(3, &sigma, &tau, 2, 3));
        // A->B does not imply B->A.
        let sigma = [Dependency::Fd {
            lhs: vec![0],
            rhs: 1,
        }];
        let tau = Dependency::Fd {
            lhs: vec![1],
            rhs: 0,
        };
        assert!(!implies_bounded(2, &sigma, &tau, 2, 3));
    }
}
