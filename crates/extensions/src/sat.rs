//! The 3-SAT reduction of Theorem 3.6: deciding whether a tree is a
//! *possible prefix* given a tree type and a sequence of ps-query-answer
//! pairs is NP-hard (and co-NP-hard for *certain prefix*), independently
//! of the representation system.
//!
//! The construction follows the paper: a document encodes a truth
//! assignment (one `var` node per variable with a 0/1 `val` child) and
//! the clause structure of the formula (pinned by query answers); empty
//! answers to a family of consistency queries force literal values to
//! agree with variable values; a final empty answer forces the
//! root-level `val` to be 1 only when every clause has a true literal.
//! The formula is then satisfiable iff `root—val(=1)` is a possible
//! prefix.
//!
//! The accumulated knowledge is kept as a [`ConjunctiveTree`]
//! (Theorem 3.8: polynomial in the query sequence); the possible-prefix
//! decision is made by scanning the *canonical worlds* of the encoding —
//! one per assignment and root value, justified by Lemma 2.3's
//! finite-representative argument — against the PTIME membership test of
//! every layer. (Deciding it directly on the conjunctive representation
//! is exactly the NP-complete emptiness problem of Theorem 3.10, also
//! exposed here as [`SatEncoding::emptiness_instance`].)

use iixml_core::type_intersect::restrict_to_type;
use iixml_core::{ConjunctiveTree, IncompleteTree};
use iixml_query::{Answer, PsQueryBuilder};
use iixml_tree::{Alphabet, DataTree, Mult, Nid, NodeRef, TreeType, TreeTypeBuilder};
use iixml_values::{Cond, Rat};

/// A CNF formula with exactly three literals per clause. Literals are
/// nonzero integers: `+i` / `-i` for variable `i` (1-based).
#[derive(Clone, Debug)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<[i64; 3]>,
}

impl Cnf {
    /// Evaluates under an assignment (`assign[i-1]` = value of `x_i`).
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|&lit| {
                let v = assign[(lit.unsigned_abs() as usize) - 1];
                if lit > 0 {
                    v
                } else {
                    !v
                }
            })
        })
    }

    /// Brute-force satisfiability (the test oracle).
    pub fn brute_force_sat(&self) -> bool {
        (0..(1u32 << self.num_vars)).any(|bits| {
            let assign: Vec<bool> = (0..self.num_vars).map(|i| bits & (1 << i) != 0).collect();
            self.eval(&assign)
        })
    }
}

/// The Theorem 3.6 encoding of a CNF formula.
pub struct SatEncoding {
    /// The element alphabet.
    pub alpha: Alphabet,
    /// The input tree type of the reduction.
    pub ty: TreeType,
    /// The accumulated query-answer knowledge (conjunctive — polynomial
    /// in the sequence, Corollary 3.9).
    pub conj: ConjunctiveTree,
    /// Number of query-answer pairs in the sequence.
    pub num_queries: usize,
    formula: Cnf,
}

const ROOT_ID: u64 = 0;
const VAR_BASE: u64 = 10;
const CLAUSE_BASE: u64 = 1_000;

/// `value ∉ {0, 1}`.
fn not_bool() -> Cond {
    Cond::ne(Rat::ZERO).and(Cond::ne(Rat::ONE))
}

/// Builds the full encoding: tree type, query-answer sequence, and the
/// conjunctive knowledge tree.
pub fn encode(cnf: &Cnf) -> SatEncoding {
    let mut alpha = Alphabet::new();
    let ty = TreeTypeBuilder::new(&mut alpha)
        .root("root")
        .rule(
            "root",
            &[
                ("var", Mult::Star),
                ("clause", Mult::Star),
                ("val", Mult::One),
            ],
        )
        .rule("var", &[("val", Mult::One)])
        .rule(
            "clause",
            &[
                ("lit1", Mult::One),
                ("lit2", Mult::One),
                ("lit3", Mult::One),
            ],
        )
        .rule("lit1", &[("val", Mult::One)])
        .rule("lit2", &[("val", Mult::One)])
        .rule("lit3", &[("val", Mult::One)])
        .build()
        .expect("well-formed type");

    // The type as the base layer.
    let labels: Vec<_> = alpha.labels().collect();
    let names: Vec<&str> = labels.iter().map(|&l| alpha.name(l)).collect();
    let universal = IncompleteTree::universal(&labels, &names);
    let base = restrict_to_type(&universal, &ty);
    let mut conj = ConjunctiveTree::from_layers(vec![base]);
    let mut num_queries = 0usize;

    // A canonical world (assignment all-false, root val 0) supplies the
    // answers to the two nonempty queries.
    let w0 = canonical_world(cnf, &alpha, &vec![false; cnf.num_vars], false);

    // qA: all variables.
    {
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "var", Cond::True).unwrap();
        let q = b.build();
        let a = q.eval(&w0);
        conj.refine(&alpha, &q, &a).expect("consistent");
        num_queries += 1;
    }
    // qB: all clauses with their three literals.
    {
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let c = b.child(root, "clause", Cond::True).unwrap();
        b.child(c, "lit1", Cond::True).unwrap();
        b.child(c, "lit2", Cond::True).unwrap();
        b.child(c, "lit3", Cond::True).unwrap();
        let q = b.build();
        let a = q.eval(&w0);
        conj.refine(&alpha, &q, &a).expect("consistent");
        num_queries += 1;
    }
    // qC: variable values are 0/1 (empty answer).
    {
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let v = b.child(root, "var", Cond::True).unwrap();
        b.child(v, "val", not_bool()).unwrap();
        let q = b.build();
        conj.refine(&alpha, &q, &Answer::empty())
            .expect("consistent");
        num_queries += 1;
    }
    // Root-level val is 0/1.
    {
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "val", not_bool()).unwrap();
        let q = b.build();
        conj.refine(&alpha, &q, &Answer::empty())
            .expect("consistent");
        num_queries += 1;
    }
    // qD_k: literal values are 0/1.
    for k in 1..=3 {
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let c = b.child(root, "clause", Cond::True).unwrap();
        let l = b.child(c, &format!("lit{k}"), Cond::True).unwrap();
        b.child(l, "val", not_bool()).unwrap();
        let q = b.build();
        conj.refine(&alpha, &q, &Answer::empty())
            .expect("consistent");
        num_queries += 1;
    }
    // qE(i, v, k, s): literal values agree with variable values.
    for i in 1..=cnf.num_vars as i64 {
        for v in [0i64, 1] {
            for k in 1..=3 {
                for s in [1i64, -1] {
                    let truth = if s > 0 { v } else { 1 - v };
                    let wrong = 1 - truth;
                    let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
                    let root = b.root();
                    let var = b.child(root, "var", Cond::eq(Rat::from(i))).unwrap();
                    b.child(var, "val", Cond::eq(Rat::from(v))).unwrap();
                    let c = b.child(root, "clause", Cond::True).unwrap();
                    let l = b
                        .child(c, &format!("lit{k}"), Cond::eq(Rat::from(s * i)))
                        .unwrap();
                    b.child(l, "val", Cond::eq(Rat::from(wrong))).unwrap();
                    let q = b.build();
                    conj.refine(&alpha, &q, &Answer::empty())
                        .expect("consistent");
                    num_queries += 1;
                }
            }
        }
    }
    // qF: val=1 implies no all-false clause.
    {
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "val", Cond::eq(Rat::ONE)).unwrap();
        let c = b.child(root, "clause", Cond::True).unwrap();
        for k in 1..=3 {
            let l = b.child(c, &format!("lit{k}"), Cond::True).unwrap();
            b.child(l, "val", Cond::eq(Rat::ZERO)).unwrap();
        }
        let q = b.build();
        conj.refine(&alpha, &q, &Answer::empty())
            .expect("consistent");
        num_queries += 1;
    }

    SatEncoding {
        alpha,
        ty,
        conj,
        num_queries,
        formula: cnf.clone(),
    }
}

/// The canonical world for an assignment: variables with their values,
/// clause literals with the induced truth values, and the given
/// root-level `val`.
pub fn canonical_world(cnf: &Cnf, alpha: &Alphabet, assign: &[bool], root_val: bool) -> DataTree {
    let root_l = alpha.get("root").expect("encode interned labels");
    let var_l = alpha.get("var").unwrap();
    let val_l = alpha.get("val").unwrap();
    let clause_l = alpha.get("clause").unwrap();
    let lit_l = [
        alpha.get("lit1").unwrap(),
        alpha.get("lit2").unwrap(),
        alpha.get("lit3").unwrap(),
    ];
    let mut t = DataTree::new(Nid(ROOT_ID), root_l, Rat::ZERO);
    let root: NodeRef = t.root();
    for (i, &v) in assign.iter().enumerate() {
        let var = t
            .add_child(
                root,
                Nid(VAR_BASE + 2 * i as u64),
                var_l,
                Rat::from(i as i64 + 1),
            )
            .unwrap();
        t.add_child(
            var,
            Nid(VAR_BASE + 2 * i as u64 + 1),
            val_l,
            Rat::from(v as i64),
        )
        .unwrap();
    }
    for (j, clause) in cnf.clauses.iter().enumerate() {
        let cid = CLAUSE_BASE + 10 * j as u64;
        let c = t.add_child(root, Nid(cid), clause_l, Rat::ZERO).unwrap();
        for (k, &lit) in clause.iter().enumerate() {
            let l = t
                .add_child(c, Nid(cid + 1 + 2 * k as u64), lit_l[k], Rat::from(lit))
                .unwrap();
            let truth = {
                let var = assign[(lit.unsigned_abs() as usize) - 1];
                if lit > 0 {
                    var
                } else {
                    !var
                }
            };
            t.add_child(
                l,
                Nid(cid + 2 + 2 * k as u64),
                val_l,
                Rat::from(truth as i64),
            )
            .unwrap();
        }
    }
    t.add_child(root, Nid(9_000), val_l, Rat::from(root_val as i64))
        .unwrap();
    t
}

impl SatEncoding {
    /// Decides the possible-prefix question of Theorem 3.6 — is
    /// `root—val(=1)` a possible prefix of some tree satisfying the type
    /// and all query-answer pairs? — by scanning the canonical worlds
    /// against the conjunctive tree's PTIME membership test.
    pub fn possible_prefix_val1(&self) -> bool {
        let n = self.formula.num_vars;
        (0..(1u32 << n)).any(|bits| {
            let assign: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            let w = canonical_world(&self.formula, &self.alpha, &assign, true);
            self.conj.contains(&w)
        })
    }

    /// The Theorem 3.10 emptiness instance: an additional layer pins the
    /// root `val` to 1, making `rep` empty iff the formula is
    /// unsatisfiable. Deciding emptiness of the returned conjunctive
    /// tree is NP-complete.
    pub fn emptiness_instance(&self) -> ConjunctiveTree {
        let mut conj = self.conj.clone();
        let mut alpha = self.alpha.clone();
        // Query root/val[=1] answered nonempty, pinning val=1.
        let mut b = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "val", Cond::eq(Rat::ONE)).unwrap();
        let q = b.build();
        // Answer: root + the val node carrying value 1.
        let w = canonical_world(
            &self.formula,
            &self.alpha,
            &vec![false; self.formula.num_vars],
            true,
        );
        let ans = q.eval(&w);
        assert!(!ans.is_empty());
        conj.refine(&self.alpha, &q, &ans).expect("consistent");
        conj
    }

    /// The size of the conjunctive knowledge (polynomial in the formula,
    /// Corollary 3.9).
    pub fn knowledge_size(&self) -> usize {
        self.conj.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat_cases() -> Vec<(Cnf, bool)> {
        vec![
            // (x1 ∨ x1 ∨ x1): satisfiable.
            (
                Cnf {
                    num_vars: 1,
                    clauses: vec![[1, 1, 1]],
                },
                true,
            ),
            // (x1)(¬x1): unsatisfiable.
            (
                Cnf {
                    num_vars: 1,
                    clauses: vec![[1, 1, 1], [-1, -1, -1]],
                },
                false,
            ),
            // (x1 ∨ ¬x2 ∨ x2): trivially satisfiable.
            (
                Cnf {
                    num_vars: 2,
                    clauses: vec![[1, -2, 2]],
                },
                true,
            ),
            // (x1∨x2)(¬x1∨x2)(x1∨¬x2)(¬x1∨¬x2): unsatisfiable (padded).
            (
                Cnf {
                    num_vars: 2,
                    clauses: vec![[1, 2, 2], [-1, 2, 2], [1, -2, -2], [-1, -2, -2]],
                },
                false,
            ),
            // 3 variables, satisfiable.
            (
                Cnf {
                    num_vars: 3,
                    clauses: vec![[1, -2, 3], [-1, 2, -3], [2, 3, 3]],
                },
                true,
            ),
        ]
    }

    #[test]
    fn brute_force_agrees_with_expectation() {
        for (cnf, expect) in sat_cases() {
            assert_eq!(cnf.brute_force_sat(), expect);
        }
    }

    #[test]
    fn reduction_decides_satisfiability() {
        for (cnf, expect) in sat_cases() {
            let enc = encode(&cnf);
            assert_eq!(
                enc.possible_prefix_val1(),
                expect,
                "reduction disagrees with SAT on {cnf:?}"
            );
        }
    }

    #[test]
    fn canonical_worlds_satisfy_the_type() {
        let (cnf, _) = &sat_cases()[4];
        let enc = encode(cnf);
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            for rv in [false, true] {
                let w = canonical_world(cnf, &enc.alpha, &assign, rv);
                assert!(enc.ty.accepts(&w));
            }
        }
    }

    #[test]
    fn knowledge_stays_polynomial() {
        // Corollary 3.9: conjunctive knowledge grows linearly with the
        // number of queries (which is linear in n).
        let sizes: Vec<(usize, usize)> = (1..=4)
            .map(|n| {
                let cnf = Cnf {
                    num_vars: n,
                    clauses: vec![[1, 1, 1]],
                };
                let enc = encode(&cnf);
                (enc.num_queries, enc.knowledge_size())
            })
            .collect();
        // Size per query stays bounded.
        for (q, s) in &sizes {
            assert!(s / q < 300, "size {s} for {q} queries");
        }
        // Growth is roughly linear in n.
        assert!(sizes[3].1 < sizes[0].1 * 8);
    }

    #[test]
    fn emptiness_instance_matches_satisfiability_membershipwise() {
        // The emptiness instance's rep contains a canonical val=1 world
        // iff the formula is satisfiable.
        for (cnf, expect) in sat_cases().into_iter().take(4) {
            let enc = encode(&cnf);
            let inst = enc.emptiness_instance();
            let any = (0..(1u32 << cnf.num_vars)).any(|bits| {
                let assign: Vec<bool> = (0..cnf.num_vars).map(|i| bits & (1 << i) != 0).collect();
                let w = canonical_world(&cnf, &enc.alpha, &assign, true);
                inst.contains(&w)
            });
            assert_eq!(any, expect);
        }
    }
}
