//! Extended ps-queries (Section 4): branching, optional subtrees,
//! negated subtrees, data-value variables with join conditions, and
//! constructed answers.
//!
//! Unlike the core language, these extensions break the paper's
//! tractability results (Theorems 4.1, 4.5, 4.6), so no incomplete-tree
//! algorithms are provided — only *evaluation on concrete data trees*,
//! which is what the hardness constructions need.
//!
//! Semantics (following Section 4):
//! * a valuation is a partial mapping from pattern nodes to tree nodes,
//!   defined on the root and closed under parents;
//! * plain subtrees must be matched; optional (`?`) subtrees may be
//!   matched or skipped; negated (`¬`) subtrees must admit *no* matching
//!   extension;
//! * variables bind the data values of their nodes; join conditions
//!   (`X = Y`, `X ≠ Y`) must hold among bound variables (joins with an
//!   unbound side are vacuous);
//! * the answer is the prefix of all nodes in the image of some
//!   valuation (plus bar-extracted subtrees); constructed answers
//!   instead build an output tree from Skolem terms over the bindings.

use crate::regex::Regex;
use iixml_tree::{Alphabet, DataTree, Label, Nid, NodeRef};
use iixml_values::{Cond, IntervalSet, Rat};
use std::collections::{HashMap, HashSet};

/// A data-value variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

/// How a pattern subtree participates in matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Modality {
    /// Must be matched.
    Plain,
    /// May be matched or skipped (`?`).
    Optional,
    /// Must not be matchable (`¬`).
    Negated,
}

/// A join condition between two variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Join {
    /// Left variable.
    pub a: Var,
    /// Right variable.
    pub b: Var,
    /// `true` for `=`, `false` for `≠`.
    pub equal: bool,
}

/// Reference to an extended-query pattern node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct XNodeRef(pub u32);

#[derive(Clone, Debug)]
struct XNode {
    label: Label,
    cond: IntervalSet,
    modality: Modality,
    barred: bool,
    var: Option<Var>,
    /// Optional regular path expression from the parent (edges default
    /// to the single-step child axis). Used by Theorem 4.7's queries.
    edge: Option<Regex>,
    children: Vec<XNodeRef>,
}

/// An extended query pattern.
#[derive(Clone, Debug)]
pub struct XQuery {
    nodes: Vec<XNode>,
    joins: Vec<Join>,
}

/// Builder for [`XQuery`].
pub struct XQueryBuilder<'a> {
    alpha: &'a mut Alphabet,
    nodes: Vec<XNode>,
    joins: Vec<Join>,
    next_var: u32,
}

impl<'a> XQueryBuilder<'a> {
    /// Starts a pattern with the given root.
    pub fn new(alpha: &'a mut Alphabet, root: &str, cond: Cond) -> XQueryBuilder<'a> {
        let label = alpha.intern(root);
        XQueryBuilder {
            alpha,
            nodes: vec![XNode {
                label,
                cond: cond.to_intervals(),
                modality: Modality::Plain,
                barred: false,
                var: None,
                edge: None,
                children: Vec::new(),
            }],
            joins: Vec::new(),
            next_var: 0,
        }
    }

    /// The root node.
    pub fn root(&self) -> XNodeRef {
        XNodeRef(0)
    }

    /// Allocates a fresh variable.
    pub fn var(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    /// Adds a child pattern node (duplicate sibling labels allowed —
    /// this is the *branching* extension).
    pub fn child(
        &mut self,
        parent: XNodeRef,
        name: &str,
        cond: Cond,
        modality: Modality,
    ) -> XNodeRef {
        self.add(parent, name, cond, modality, false, None, None)
    }

    /// Adds a barred child (whole-subtree extraction).
    pub fn barred_child(&mut self, parent: XNodeRef, name: &str, cond: Cond) -> XNodeRef {
        self.add(parent, name, cond, Modality::Plain, true, None, None)
    }

    /// Adds a child binding a fresh variable; returns (node, var).
    pub fn child_var(
        &mut self,
        parent: XNodeRef,
        name: &str,
        cond: Cond,
        modality: Modality,
    ) -> (XNodeRef, Var) {
        let v = self.var();
        let n = self.add(parent, name, cond, modality, false, Some(v), None);
        (n, v)
    }

    /// Adds a child reached through a regular path expression rather
    /// than a single edge (Theorem 4.7's recursive path expressions).
    pub fn child_path(
        &mut self,
        parent: XNodeRef,
        path: Regex,
        name: &str,
        cond: Cond,
        var: Option<Var>,
    ) -> XNodeRef {
        self.add(parent, name, cond, Modality::Plain, false, var, Some(path))
    }

    #[allow(clippy::too_many_arguments)]
    fn add(
        &mut self,
        parent: XNodeRef,
        name: &str,
        cond: Cond,
        modality: Modality,
        barred: bool,
        var: Option<Var>,
        edge: Option<Regex>,
    ) -> XNodeRef {
        let label = self.alpha.intern(name);
        let r = XNodeRef(self.nodes.len() as u32);
        self.nodes.push(XNode {
            label,
            cond: cond.to_intervals(),
            modality,
            barred,
            var,
            edge,
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(r);
        r
    }

    /// Adds a join condition.
    pub fn join(&mut self, a: Var, b: Var, equal: bool) {
        self.joins.push(Join { a, b, equal });
    }

    /// Finishes the query.
    pub fn build(self) -> XQuery {
        XQuery {
            nodes: self.nodes,
            joins: self.joins,
        }
    }
}

/// A binding of pattern nodes to tree nodes plus variable values.
#[derive(Clone, Debug, Default)]
pub struct Valuation {
    /// Pattern node → tree node.
    pub map: HashMap<XNodeRef, NodeRef>,
    /// Variable → bound value.
    pub vars: HashMap<Var, Rat>,
}

impl XQuery {
    fn node(&self, r: XNodeRef) -> &XNode {
        &self.nodes[r.0 as usize]
    }

    /// The root node.
    pub fn root(&self) -> XNodeRef {
        XNodeRef(0)
    }

    /// All valuations of the pattern into `t` (exponential in general —
    /// the extensions are used for hardness constructions, not for
    /// large-scale evaluation).
    pub fn valuations(&self, t: &DataTree) -> Vec<Valuation> {
        let mut out = Vec::new();
        let root = t.root();
        let rn = self.node(self.root());
        if t.label(root) != rn.label || !rn.cond.contains(t.value(root)) {
            return out;
        }
        let mut v = Valuation::default();
        v.map.insert(self.root(), root);
        if let Some(var) = rn.var {
            v.vars.insert(var, t.value(root));
        }
        self.extend(t, self.root(), root, v, &mut out);
        out
    }

    /// Candidate targets of a pattern child under a matched tree node:
    /// plain edges yield children; regex edges yield all descendants
    /// whose path from the node matches.
    fn targets(&self, t: &DataTree, at: NodeRef, child: XNodeRef) -> Vec<NodeRef> {
        let cn = self.node(child);
        match &cn.edge {
            None => t
                .children(at)
                .iter()
                .copied()
                .filter(|&c| t.label(c) == cn.label && cn.cond.contains(t.value(c)))
                .collect(),
            Some(rx) => {
                // Walk descendants tracking NFA state sets; the path
                // includes the labels of intermediate nodes AND the
                // target, with the target's label consumed last... The
                // convention here: the regex matches the label sequence
                // of the nodes strictly below `at` down to and including
                // the target's parent-path, then the explicit label/cond
                // of the pattern node applies to the target itself.
                let nfa = rx.compile();
                let mut out = Vec::new();
                let mut stack = vec![(at, nfa.start_set())];
                while let Some((n, states)) = stack.pop() {
                    for &c in t.children(n) {
                        // Target check: path so far accepted, label and
                        // condition match.
                        if nfa.accepting(&states)
                            && t.label(c) == cn.label
                            && cn.cond.contains(t.value(c))
                        {
                            out.push(c);
                        }
                        let next = nfa.advance(&states, t.label(c));
                        if !next.is_empty() {
                            stack.push((c, next));
                        }
                    }
                }
                out.sort();
                out.dedup();
                out
            }
        }
    }

    fn extend(
        &self,
        t: &DataTree,
        m: XNodeRef,
        at: NodeRef,
        v: Valuation,
        out: &mut Vec<Valuation>,
    ) {
        // Assign children of m one at a time (depth-first product).
        self.assign_children(t, m, at, 0, v, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn assign_children(
        &self,
        t: &DataTree,
        m: XNodeRef,
        at: NodeRef,
        idx: usize,
        v: Valuation,
        out: &mut Vec<Valuation>,
    ) {
        let kids = &self.node(m).children;
        if idx == kids.len() {
            // All children of this node placed; check joins and negations
            // lazily at the very top level only.
            if m == self.root() {
                if self.joins_ok(&v.vars) && self.negations_ok(t, &v) {
                    out.push(v);
                }
            } else {
                out.push(v);
            }
            return;
        }
        let c = kids[idx];
        let cn = self.node(c);
        match cn.modality {
            Modality::Negated => {
                // Handled in negations_ok after full assignment.
                self.assign_children(t, m, at, idx + 1, v, out);
            }
            Modality::Optional | Modality::Plain => {
                let candidates = self.targets(t, at, c);
                if cn.modality == Modality::Optional {
                    // Skip variant.
                    self.assign_children(t, m, at, idx + 1, v.clone(), out);
                }
                for target in candidates {
                    let mut v2 = v.clone();
                    v2.map.insert(c, target);
                    if let Some(var) = cn.var {
                        if let Some(&prev) = v2.vars.get(&var) {
                            if prev != t.value(target) {
                                continue;
                            }
                        }
                        v2.vars.insert(var, t.value(target));
                    }
                    // Recurse into c's subtree, then continue with the
                    // remaining siblings for every produced extension.
                    let mut subs = Vec::new();
                    self.assign_children(t, c, target, 0, v2, &mut subs);
                    for sv in subs {
                        self.assign_children(t, m, at, idx + 1, sv, out);
                    }
                }
            }
        }
    }

    fn joins_ok(&self, vars: &HashMap<Var, Rat>) -> bool {
        self.joins.iter().all(|j| {
            match (vars.get(&j.a), vars.get(&j.b)) {
                (Some(x), Some(y)) => {
                    if j.equal {
                        x == y
                    } else {
                        x != y
                    }
                }
                _ => true, // unbound side: vacuous
            }
        })
    }

    /// Checks every negated subtree: from its (matched) parent, no
    /// extension of the valuation matches it (with its own descendants
    /// treated as plain).
    fn negations_ok(&self, t: &DataTree, v: &Valuation) -> bool {
        for (&m, &at) in &v.map {
            for &c in &self.node(m).children {
                if self.node(c).modality != Modality::Negated {
                    continue;
                }
                // Try to match the negated subtree below `at` under the
                // outer bindings: success refutes the valuation.
                if self.can_match_sub(t, c, at, &v.vars) {
                    return false;
                }
            }
        }
        true
    }

    /// Can pattern node `c` (and its subtree, all treated as plain)
    /// match below `at` consistently with the outer variable bindings
    /// and the query joins?
    fn can_match_sub(
        &self,
        t: &DataTree,
        c: XNodeRef,
        at: NodeRef,
        outer: &HashMap<Var, Rat>,
    ) -> bool {
        let candidates = self.targets(t, at, c);
        for target in candidates {
            let mut vars = outer.clone();
            if let Some(var) = self.node(c).var {
                if let Some(&prev) = vars.get(&var) {
                    if prev != t.value(target) {
                        continue;
                    }
                }
                vars.insert(var, t.value(target));
            }
            if self.match_all_children(t, c, target, &vars) {
                return true;
            }
        }
        false
    }

    fn match_all_children(
        &self,
        t: &DataTree,
        m: XNodeRef,
        at: NodeRef,
        vars: &HashMap<Var, Rat>,
    ) -> bool {
        // Backtracking over this node's children (all plain inside a
        // negation).
        fn go(
            q: &XQuery,
            t: &DataTree,
            kids: &[XNodeRef],
            idx: usize,
            at: NodeRef,
            vars: &HashMap<Var, Rat>,
        ) -> bool {
            if idx == kids.len() {
                return q.joins_ok(vars);
            }
            let c = kids[idx];
            for target in q.targets(t, at, c) {
                let mut v2 = vars.clone();
                if let Some(var) = q.node(c).var {
                    if let Some(&prev) = v2.get(&var) {
                        if prev != t.value(target) {
                            continue;
                        }
                    }
                    v2.insert(var, t.value(target));
                }
                if q.match_all_children(t, c, target, &v2) && go(q, t, kids, idx + 1, at, &v2) {
                    return true;
                }
            }
            false
        }
        if !self.joins_ok(vars) {
            return false;
        }
        go(self, t, &self.node(m).children, 0, at, vars)
    }

    /// The prefix-selection answer: nodes in the image of some
    /// valuation, plus bar-extracted subtrees. `None` = empty answer.
    pub fn eval(&self, t: &DataTree) -> Option<DataTree> {
        let vals = self.valuations(t);
        if vals.is_empty() {
            return None;
        }
        let mut include: HashSet<NodeRef> = HashSet::new();
        let mut barred: HashSet<NodeRef> = HashSet::new();
        for v in &vals {
            for (&m, &n) in &v.map {
                include.insert(n);
                if self.node(m).barred {
                    barred.insert(n);
                }
            }
        }
        // Regex edges can match non-child descendants; close the set
        // upward so the answer is a prefix.
        let mut stack: Vec<NodeRef> = include.iter().copied().collect();
        while let Some(n) = stack.pop() {
            if let Some(p) = t.parent(n) {
                if include.insert(p) {
                    stack.push(p);
                }
            }
        }
        // Build the answer prefix.
        let mut answer = DataTree::new(t.nid(t.root()), t.label(t.root()), t.value(t.root()));
        fn copy(
            t: &DataTree,
            n: NodeRef,
            out: &mut DataTree,
            on: NodeRef,
            include: &HashSet<NodeRef>,
            barred: &HashSet<NodeRef>,
            in_bar: bool,
        ) {
            for &c in t.children(n) {
                if in_bar || include.contains(&c) {
                    let oc = out
                        .add_child(on, t.nid(c), t.label(c), t.value(c))
                        .expect("unique ids");
                    let bar = in_bar || barred.contains(&c);
                    copy(t, c, out, oc, include, barred, bar);
                }
            }
        }
        let aroot = answer.root();
        let root_bar = barred.contains(&t.root());
        copy(t, t.root(), &mut answer, aroot, &include, &barred, root_bar);
        Some(answer)
    }
}

/// A node of a constructed-answer head: a label plus a Skolem term over
/// query variables. Two bindings produce the same output node iff their
/// Skolem function and argument values coincide (the XML-QL-style
/// construction of Section 4).
#[derive(Clone, Debug)]
pub struct HeadNode {
    /// Output element label.
    pub label: Label,
    /// Skolem function name.
    pub skolem: String,
    /// Skolem arguments (query variables).
    pub args: Vec<Var>,
    /// Child head nodes (indices into the head's node list).
    pub children: Vec<usize>,
}

/// A constructed-answer head: a tree of [`HeadNode`]s (index 0 = root).
#[derive(Clone, Debug)]
pub struct Head {
    /// The head nodes.
    pub nodes: Vec<HeadNode>,
}

impl Head {
    /// Builds the constructed answer: one output node per distinct
    /// Skolem instantiation, assembled into a tree. Output values are
    /// the first argument's value (or 0).
    pub fn construct(&self, q: &XQuery, t: &DataTree) -> DataTree {
        let vals = q.valuations(t);
        let mut out = DataTree::new(Nid(0), self.nodes[0].label, Rat::ZERO);
        let mut ids: HashMap<(usize, Vec<Rat>), Nid> = HashMap::new();
        let mut next = 1u64;
        for v in &vals {
            self.instantiate(0, out.root(), &v.vars, &mut out, &mut ids, &mut next);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn instantiate(
        &self,
        h: usize,
        parent: NodeRef,
        vars: &HashMap<Var, Rat>,
        out: &mut DataTree,
        ids: &mut HashMap<(usize, Vec<Rat>), Nid>,
        next: &mut u64,
    ) {
        for &c in &self.nodes[h].children.clone() {
            let hn = &self.nodes[c];
            let Some(args) = hn
                .args
                .iter()
                .map(|v| vars.get(v).copied())
                .collect::<Option<Vec<Rat>>>()
            else {
                continue; // an argument is unbound in this valuation
            };
            let key = (c, args.clone());
            let nid = *ids.entry(key).or_insert_with(|| {
                let id = Nid(*next);
                *next += 1;
                id
            });
            let node = match out.by_nid(nid) {
                Some(n) => n,
                None => {
                    let value = args.first().copied().unwrap_or(Rat::ZERO);
                    out.add_child(parent, nid, hn.label, value)
                        .expect("skolem ids unique")
                }
            };
            self.instantiate(c, node, vars, out, ids, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(alpha: &mut Alphabet) -> DataTree {
        // root(0): a(1,v=1){b(2,v=5)}, a(3,v=2){b(4,v=6)}, c(5,v=9)
        let r = alpha.intern("root");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let c = alpha.intern("c");
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        let a1 = t.add_child(t.root(), Nid(1), a, Rat::from(1)).unwrap();
        t.add_child(a1, Nid(2), b, Rat::from(5)).unwrap();
        let a2 = t.add_child(t.root(), Nid(3), a, Rat::from(2)).unwrap();
        t.add_child(a2, Nid(4), b, Rat::from(6)).unwrap();
        t.add_child(t.root(), Nid(5), c, Rat::from(9)).unwrap();
        t
    }

    #[test]
    fn branching_duplicate_siblings() {
        let mut alpha = Alphabet::new();
        let t = sample(&mut alpha);
        // root { a[=1], a[=2] }: needs two distinct a's (non-injective
        // valuations map each pattern node somewhere; conditions force
        // different targets).
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::eq(Rat::from(1)), Modality::Plain);
        b.child(root, "a", Cond::eq(Rat::from(2)), Modality::Plain);
        let q = b.build();
        let ans = q.eval(&t).unwrap();
        assert_eq!(ans.len(), 3); // root + both a's
    }

    #[test]
    fn optional_subtrees() {
        let mut alpha = Alphabet::new();
        let t = sample(&mut alpha);
        // root { a, d? }: d absent but the query still matches.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::True, Modality::Plain);
        b.child(root, "d", Cond::True, Modality::Optional);
        let q = b.build();
        let ans = q.eval(&t).unwrap();
        assert_eq!(ans.len(), 3); // root + both a's (d contributes nothing)
                                  // Optional c is included when present.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::True, Modality::Plain);
        b.child(root, "c", Cond::True, Modality::Optional);
        let q = b.build();
        let ans = q.eval(&t).unwrap();
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn negated_subtrees() {
        let mut alpha = Alphabet::new();
        let t = sample(&mut alpha);
        // root { a[=1], ¬d }: no d child -> matches.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::eq(Rat::from(1)), Modality::Plain);
        b.child(root, "d", Cond::True, Modality::Negated);
        let q = b.build();
        assert!(q.eval(&t).is_some());
        // root { ¬c }: c exists -> no valuation.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.child(root, "c", Cond::True, Modality::Negated);
        let q = b.build();
        assert!(q.eval(&t).is_none());
        // Negation of a subtree with structure: root { ¬ a{b[=7]} }:
        // no a has b=7 -> matches.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let na = b.child(root, "a", Cond::True, Modality::Negated);
        b.child(na, "b", Cond::eq(Rat::from(7)), Modality::Plain);
        let q = b.build();
        assert!(q.eval(&t).is_some());
        // b=5 exists under a -> negation fails.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let na = b.child(root, "a", Cond::True, Modality::Negated);
        b.child(na, "b", Cond::eq(Rat::from(5)), Modality::Plain);
        let q = b.build();
        assert!(q.eval(&t).is_none());
    }

    #[test]
    fn joins_on_values() {
        let mut alpha = Alphabet::new();
        let t = sample(&mut alpha);
        // root { a(X){b(Y)}, a(X'){b(Y')} } with X != X', Y = Y': no two
        // distinct a's share a b value -> no valuation survives joins...
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let (a1, x1) = b.child_var(root, "a", Cond::True, Modality::Plain);
        let (_, y1) = b.child_var(a1, "b", Cond::True, Modality::Plain);
        let (a2, x2) = b.child_var(root, "a", Cond::True, Modality::Plain);
        let (_, y2) = b.child_var(a2, "b", Cond::True, Modality::Plain);
        b.join(x1, x2, false); // different a's
        b.join(y1, y2, true); // same b value
        let q = b.build();
        assert!(q.eval(&t).is_none());
        // With Y != Y' instead: satisfiable.
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let (a1, x1) = b.child_var(root, "a", Cond::True, Modality::Plain);
        let (_, y1) = b.child_var(a1, "b", Cond::True, Modality::Plain);
        let (a2, x2) = b.child_var(root, "a", Cond::True, Modality::Plain);
        let (_, y2) = b.child_var(a2, "b", Cond::True, Modality::Plain);
        b.join(x1, x2, false);
        b.join(y1, y2, false);
        let q = b.build();
        assert!(q.eval(&t).is_some());
    }

    #[test]
    fn regex_edges() {
        let mut alpha = Alphabet::new();
        let t = sample(&mut alpha);
        let a = alpha.get("a").unwrap();
        // root -(a)-> b : b's reachable through one a.
        let mut bld = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child_path(root, Regex::Sym(a), "b", Cond::True, None);
        let q = bld.build();
        let ans = q.eval(&t).unwrap();
        // root + 2 a's (path closure) + 2 b's.
        assert_eq!(ans.len(), 5);
        // root -(sigma*)-> b with cond = 6.
        let mut bld = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child_path(root, Regex::any_star(), "b", Cond::eq(Rat::from(6)), None);
        let q = bld.build();
        let ans = q.eval(&t).unwrap();
        assert_eq!(ans.len(), 3); // root, a2, b=6
    }

    #[test]
    fn constructed_answers_equal_counts() {
        // The Section 4 example: head produces one `a` per X binding and
        // one `b` per Y binding — equal numbers cannot be captured by
        // incomplete trees; here we just check the construction.
        let mut alpha = Alphabet::new();
        let r = alpha.intern("root");
        let c = alpha.intern("c");
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        for i in 0..3 {
            t.add_child(t.root(), Nid(1 + i), c, Rat::from(i as i64))
                .unwrap();
        }
        let out_a = alpha.intern("a");
        let out_b = alpha.intern("b");
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        let (_, x) = b.child_var(root, "c", Cond::True, Modality::Plain);
        let q = b.build();
        let head = Head {
            nodes: vec![
                HeadNode {
                    label: r,
                    skolem: "root".into(),
                    args: vec![],
                    children: vec![1, 2],
                },
                HeadNode {
                    label: out_a,
                    skolem: "f".into(),
                    args: vec![x],
                    children: vec![],
                },
                HeadNode {
                    label: out_b,
                    skolem: "g".into(),
                    args: vec![x],
                    children: vec![],
                },
            ],
        };
        let ans = head.construct(&q, &t);
        // One a and one b per distinct c value: 3 + 3 + root.
        assert_eq!(ans.len(), 7);
        let a_count = ans
            .preorder()
            .iter()
            .filter(|&&n| ans.label(n) == out_a)
            .count();
        let b_count = ans
            .preorder()
            .iter()
            .filter(|&&n| ans.label(n) == out_b)
            .count();
        assert_eq!(a_count, b_count);
        assert_eq!(a_count, 3);
    }

    #[test]
    fn barred_extraction() {
        let mut alpha = Alphabet::new();
        let t = sample(&mut alpha);
        let mut b = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = b.root();
        b.barred_child(root, "a", Cond::eq(Rat::from(1)));
        let q = b.build();
        let ans = q.eval(&t).unwrap();
        assert_eq!(ans.len(), 3); // root, a=1, its b
    }
}
