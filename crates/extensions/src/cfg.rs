//! The context-free-grammar intersection encoding of Theorem 4.7:
//! ps-queries extended with *recursive path expressions* and data-value
//! (in)equality make possible-emptiness undecidable, by reduction from
//! the (weak) CFG intersection emptiness problem.
//!
//! A document encodes a pair of derivation trees (one per grammar) whose
//! leaf terminals carry `val1`/`val2` children forming a successor
//! relation of data values — i.e. a positional indexing of both words by
//! the same values. The paper's query family (all expected to answer
//! empty) forces the indexing to be a genuine synchronized successor
//! structure; a final query `q` is empty iff the two encoded words are
//! equal. Hence `q` is possibly empty over the constrained documents iff
//! `L(G1) ∩ L(G2) ≠ ∅`.
//!
//! Grammars are in Chomsky normal form with the paper's extra
//! requirement that no nonterminal occurs both first and second in
//! right-hand sides (so the children of a node determine their order,
//! and leftmost/rightmost paths are regular). The `l(A)`/`r(A)` path
//! languages are materialized as bounded-depth regex unions — sufficient
//! for the bounded-length demonstrations here.

use crate::regex::Regex;
use crate::xquery::{Modality, XQuery, XQueryBuilder};
use iixml_tree::{Alphabet, DataTree, Label, Nid, NodeRef};
use iixml_values::{Cond, Rat};
use std::collections::HashMap;

/// A production: either a binary nonterminal pair or a terminal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Production {
    /// `A → B C`
    Pair(String, String),
    /// `A → t` with `t ∈ {a, b}`
    Term(char),
}

/// A CNF grammar over the terminal alphabet `{a, b}`.
#[derive(Clone, Debug)]
pub struct Grammar {
    /// Start nonterminal.
    pub start: String,
    /// Productions.
    pub rules: Vec<(String, Production)>,
}

impl Grammar {
    fn productions_of(&self, nt: &str) -> impl Iterator<Item = &Production> + '_ {
        let nt = nt.to_string();
        self.rules
            .iter()
            .filter(move |(a, _)| *a == nt)
            .map(|(_, p)| p)
    }

    /// Checks the paper's order condition: no nonterminal occurs both
    /// first and second in binary right-hand sides.
    pub fn order_condition_holds(&self) -> bool {
        let mut first = std::collections::HashSet::new();
        let mut second = std::collections::HashSet::new();
        for (_, p) in &self.rules {
            if let Production::Pair(b, c) = p {
                first.insert(b.clone());
                second.insert(c.clone());
            }
        }
        first.is_disjoint(&second)
    }

    /// CYK membership test.
    pub fn accepts(&self, word: &str) -> bool {
        let n = word.len();
        if n == 0 {
            return false;
        }
        let chars: Vec<char> = word.chars().collect();
        let nts: Vec<&String> = {
            let mut v: Vec<&String> = self.rules.iter().map(|(a, _)| a).collect();
            v.sort();
            v.dedup();
            v
        };
        let idx: HashMap<&String, usize> = nts.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let k = nts.len();
        // table[i][j][a]: nts[a] derives word[i..=i+j].
        let mut table = vec![vec![vec![false; k]; n]; n];
        for (i, &c) in chars.iter().enumerate() {
            for (a, p) in &self.rules {
                if *p == Production::Term(c) {
                    table[i][0][idx[a]] = true;
                }
            }
        }
        for span in 1..n {
            for i in 0..n - span {
                for split in 0..span {
                    for (a, p) in &self.rules {
                        if let Production::Pair(b, c) = p {
                            let (Some(&bi), Some(&ci)) = (idx.get(b), idx.get(c)) else {
                                continue;
                            };
                            if table[i][split][bi] && table[i + split + 1][span - split - 1][ci] {
                                table[i][span][idx[a]] = true;
                            }
                        }
                    }
                }
            }
        }
        idx.get(&self.start).is_some_and(|&s| table[0][n - 1][s])
    }

    /// All derivation trees yielding words of the given length, up to
    /// `max_len` total (memoized enumeration; exponential, for small
    /// demonstrations only).
    pub fn derivations(&self, len: usize) -> Vec<Derivation> {
        let mut memo = HashMap::new();
        self.derive(&self.start, len, &mut memo)
    }

    fn derive(
        &self,
        nt: &str,
        len: usize,
        memo: &mut HashMap<(String, usize), Vec<Derivation>>,
    ) -> Vec<Derivation> {
        if let Some(v) = memo.get(&(nt.to_string(), len)) {
            return v.clone();
        }
        memo.insert((nt.to_string(), len), Vec::new()); // cycle guard
        let mut out = Vec::new();
        for p in self.productions_of(nt) {
            match p {
                Production::Term(c) => {
                    if len == 1 {
                        out.push(Derivation::Leaf(nt.to_string(), *c));
                    }
                }
                Production::Pair(b, c) => {
                    for split in 1..len {
                        let lefts = self.derive(b, split, memo);
                        let rights = self.derive(c, len - split, memo);
                        for l in &lefts {
                            for r in &rights {
                                out.push(Derivation::Node(
                                    nt.to_string(),
                                    Box::new(l.clone()),
                                    Box::new(r.clone()),
                                ));
                            }
                        }
                    }
                }
            }
        }
        memo.insert((nt.to_string(), len), out.clone());
        out
    }

    /// The label-paths from `nt` (exclusive) to its leftmost (`left =
    /// true`) or rightmost terminal (inclusive), up to `depth` steps —
    /// a bounded materialization of the paper's regular `l(A)` / `r(A)`.
    pub fn edge_paths(&self, nt: &str, left: bool, depth: usize) -> Vec<Vec<String>> {
        if depth == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for p in self.productions_of(nt) {
            match p {
                Production::Term(c) => out.push(vec![c.to_string()]),
                Production::Pair(b, cc) => {
                    let next = if left { b } else { cc };
                    for mut path in self.edge_paths(next, left, depth - 1) {
                        let mut full = vec![next.clone()];
                        full.append(&mut path);
                        out.push(full);
                    }
                }
            }
        }
        out
    }
}

/// A derivation tree.
#[derive(Clone, Debug)]
pub enum Derivation {
    /// Internal node `A → B C`.
    Node(String, Box<Derivation>, Box<Derivation>),
    /// Leaf `A → t`.
    Leaf(String, char),
}

impl Derivation {
    /// The derived word.
    pub fn word(&self) -> String {
        match self {
            Derivation::Leaf(_, c) => c.to_string(),
            Derivation::Node(_, l, r) => format!("{}{}", l.word(), r.word()),
        }
    }
}

/// The encoding of a derivation pair: the document plus its alphabet.
pub struct PairEncoding {
    /// Element names (grammar symbols + `root`, `a`, `b`, `val1`,
    /// `val2`).
    pub alpha: Alphabet,
    /// The document.
    pub doc: DataTree,
}

/// Encodes a derivation pair: `root → d1 d2`, with terminal leaves
/// carrying `val1`/`val2` children holding position `i` and `i + 1`.
pub fn encode_pair(d1: &Derivation, d2: &Derivation) -> PairEncoding {
    let mut alpha = Alphabet::from_names(["root", "a", "b", "val1", "val2"]);
    let mut doc = DataTree::new(Nid(0), alpha.intern("root"), Rat::ZERO);
    let mut next = 1u64;
    for d in [d1, d2] {
        let mut pos = 0i64;
        let root = doc.root();
        build(d, &mut alpha, &mut doc, root, &mut next, &mut pos);
    }
    PairEncoding { alpha, doc }
}

fn build(
    d: &Derivation,
    alpha: &mut Alphabet,
    doc: &mut DataTree,
    parent: NodeRef,
    next: &mut u64,
    pos: &mut i64,
) {
    match d {
        Derivation::Leaf(nt, c) => {
            let nt_l = alpha.intern(nt);
            let n = doc.add_child(parent, Nid(*next), nt_l, Rat::ZERO).unwrap();
            *next += 1;
            let t_l = alpha.intern(&c.to_string());
            let t = doc.add_child(n, Nid(*next), t_l, Rat::ZERO).unwrap();
            *next += 1;
            let v1 = alpha.intern("val1");
            let v2 = alpha.intern("val2");
            doc.add_child(t, Nid(*next), v1, Rat::from(*pos)).unwrap();
            *next += 1;
            doc.add_child(t, Nid(*next), v2, Rat::from(*pos + 1))
                .unwrap();
            *next += 1;
            *pos += 1;
        }
        Derivation::Node(nt, l, r) => {
            let nt_l = alpha.intern(nt);
            let n = doc.add_child(parent, Nid(*next), nt_l, Rat::ZERO).unwrap();
            *next += 1;
            build(l, alpha, doc, n, next, pos);
            build(r, alpha, doc, n, next, pos);
        }
    }
}

fn union_regex(alpha: &Alphabet, paths: &[Vec<String>]) -> Regex {
    let mut it = paths.iter().map(|p| {
        let labels: Vec<Label> = p
            .iter()
            .map(|s| alpha.get(s).expect("path labels interned"))
            .collect();
        Regex::word(&labels)
    });
    let first = it.next().unwrap_or(Regex::Eps);
    it.fold(first, Regex::alt)
}

/// Interns every symbol on the given paths, then builds their union
/// regex.
fn intern_union(alpha: &mut Alphabet, paths: &[Vec<String>]) -> Regex {
    for p in paths {
        for s in p {
            alpha.intern(s);
        }
    }
    union_regex(alpha, paths)
}

/// Start-prefixed left/right path language of a grammar.
fn start_paths(g: &Grammar, left: bool, depth: usize) -> Vec<Vec<String>> {
    g.edge_paths(&g.start, left, depth)
        .into_iter()
        .map(|mut p| {
            let mut full = vec![g.start.clone()];
            full.append(&mut p);
            full
        })
        .collect()
}

/// The paper's constraint-query family for a grammar pair; every query
/// must answer empty on a well-formed encoding. `depth` bounds the
/// materialized left/right path languages.
pub fn constraint_queries(
    g1: &Grammar,
    g2: &Grammar,
    alpha: &mut Alphabet,
    depth: usize,
) -> Vec<XQuery> {
    let mut out = Vec::new();
    let terminals = ["a", "b"];

    // (1) Minimality of the leftmost value: the leftmost val1 of each
    // side never occurs as any val2.
    for g in [g1, g2] {
        let lregex = intern_union(alpha, &start_paths(g, true, depth));
        let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
        let root = b.root();
        let x = b.var();
        b.child_path(root, lregex, "val1", Cond::True, Some(x));
        let y = b.var();
        b.child_path(root, Regex::any_star(), "val2", Cond::True, Some(y));
        b.join(x, y, true);
        out.push(b.build());
    }

    // (2) A terminal's val1 differs from its val2 (successor is not the
    // element itself).
    for t in terminals {
        let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
        let root = b.root();
        let tn = b.child_path(root, Regex::any_star(), t, Cond::True, None);
        let (_, x) = b.child_var(tn, "val1", Cond::True, Modality::Plain);
        let (_, y) = b.child_var(tn, "val2", Cond::True, Modality::Plain);
        b.join(x, y, true);
        out.push(b.build());
    }

    // (3) Distinct elements have distinct successors: no two terminals
    // with different val1 share a val2.
    for t1 in terminals {
        for t2 in terminals {
            let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
            let root = b.root();
            let n1 = b.child_path(root, Regex::any_star(), t1, Cond::True, None);
            let (_, x) = b.child_var(n1, "val1", Cond::True, Modality::Plain);
            let (_, y) = b.child_var(n1, "val2", Cond::True, Modality::Plain);
            let n2 = b.child_path(root, Regex::any_star(), t2, Cond::True, None);
            let (_, z) = b.child_var(n2, "val1", Cond::True, Modality::Plain);
            let (_, w) = b.child_var(n2, "val2", Cond::True, Modality::Plain);
            b.join(y, w, true); // same successor
            b.join(x, z, false); // different element
            out.push(b.build());
        }
    }

    // (4) Adjacency within each production A → B C: the rightmost val2
    // under B equals the leftmost val1 under C.
    for g in [g1, g2] {
        for (a, p) in &g.rules {
            let Production::Pair(bn, cn) = p else {
                continue;
            };
            let rpaths = g.edge_paths(bn, false, depth);
            let lpaths = g.edge_paths(cn, true, depth);
            if rpaths.is_empty() || lpaths.is_empty() {
                continue;
            }
            alpha.intern(a);
            alpha.intern(bn);
            alpha.intern(cn);
            let rregex = intern_union(alpha, &rpaths);
            let lregex = intern_union(alpha, &lpaths);
            let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
            let root = b.root();
            let an = b.child_path(root, Regex::any_star(), a, Cond::True, None);
            let bnode = b.child(an, bn, Cond::True, Modality::Plain);
            let x = b.var();
            b.child_path(bnode, rregex, "val2", Cond::True, Some(x));
            let cnode = b.child(an, cn, Cond::True, Modality::Plain);
            let y = b.var();
            b.child_path(cnode, lregex, "val1", Cond::True, Some(y));
            b.join(x, y, false); // must be equal: inequality is the violation
            out.push(b.build());
        }
    }

    // (5) The leftmost val1 of S1 and S2 coincide; (6) the rightmost
    // val2 coincide.
    for (left, valname) in [(true, "val1"), (false, "val2")] {
        let r1 = intern_union(alpha, &start_paths(g1, left, depth));
        let r2 = intern_union(alpha, &start_paths(g2, left, depth));
        let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
        let root = b.root();
        let x = b.var();
        b.child_path(root, r1, valname, Cond::True, Some(x));
        let y = b.var();
        b.child_path(root, r2, valname, Cond::True, Some(y));
        b.join(x, y, false);
        out.push(b.build());
    }

    // (7) Same val1 implies same val2 (positions are synchronized).
    for t1 in terminals {
        for t2 in terminals {
            let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
            let root = b.root();
            let n1 = b.child_path(root, Regex::any_star(), t1, Cond::True, None);
            let (_, x) = b.child_var(n1, "val1", Cond::True, Modality::Plain);
            let (_, y) = b.child_var(n1, "val2", Cond::True, Modality::Plain);
            let n2 = b.child_path(root, Regex::any_star(), t2, Cond::True, None);
            let (_, z) = b.child_var(n2, "val1", Cond::True, Modality::Plain);
            let (_, w) = b.child_var(n2, "val2", Cond::True, Modality::Plain);
            b.join(x, z, true);
            b.join(y, w, false);
            out.push(b.build());
        }
    }
    out
}

/// The final query `q` of the reduction: nonempty iff some position
/// carries `a` in one word and `b` in the other (the words differ).
pub fn mismatch_query(alpha: &mut Alphabet) -> XQuery {
    let a_lab = alpha.intern("a");
    let b_lab = alpha.intern("b");
    let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
    let root = b.root();
    let x = b.var();
    b.child_path(
        root,
        Regex::cat(Regex::any_star(), Regex::Sym(a_lab)),
        "val1",
        Cond::True,
        Some(x),
    );
    let y = b.var();
    b.child_path(
        root,
        Regex::cat(Regex::any_star(), Regex::Sym(b_lab)),
        "val1",
        Cond::True,
        Some(y),
    );
    b.join(x, y, true);
    b.build()
}

/// Bounded weak-intersection-emptiness through the reduction: encode
/// every derivation pair with equal word lengths up to `max_len` and
/// test the constraint/mismatch queries. Returns `Some(word)` from the
/// intersection if found.
pub fn intersection_witness(g1: &Grammar, g2: &Grammar, max_len: usize) -> Option<String> {
    for len in 1..=max_len {
        for d1 in g1.derivations(len) {
            for d2 in g2.derivations(len) {
                let enc = encode_pair(&d1, &d2);
                let mut alpha = enc.alpha.clone();
                let consistent = constraint_queries(g1, g2, &mut alpha, max_len + 2)
                    .iter()
                    .all(|q| q.eval(&enc.doc).is_none());
                if !consistent {
                    continue;
                }
                let q = mismatch_query(&mut alpha);
                if q.eval(&enc.doc).is_none() {
                    return Some(d1.word());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g_ab() -> Grammar {
        // L = {ab}
        Grammar {
            start: "S".into(),
            rules: vec![
                ("S".into(), Production::Pair("A".into(), "B".into())),
                ("A".into(), Production::Term('a')),
                ("B".into(), Production::Term('b')),
            ],
        }
    }

    fn g_ab2() -> Grammar {
        // Same language, different symbols.
        Grammar {
            start: "T".into(),
            rules: vec![
                ("T".into(), Production::Pair("C".into(), "D".into())),
                ("C".into(), Production::Term('a')),
                ("D".into(), Production::Term('b')),
            ],
        }
    }

    fn g_ba() -> Grammar {
        // L = {ba}
        Grammar {
            start: "U".into(),
            rules: vec![
                ("U".into(), Production::Pair("E".into(), "F".into())),
                ("E".into(), Production::Term('b')),
                ("F".into(), Production::Term('a')),
            ],
        }
    }

    fn g_anbn() -> Grammar {
        // L = { a^n b^n : n >= 1 } in CNF:
        // S -> A X | A B ; X -> S B ; A -> a ; B -> b.
        // Order condition: firsts {A, S}, seconds {X, B}: disjoint.
        Grammar {
            start: "S".into(),
            rules: vec![
                ("S".into(), Production::Pair("A".into(), "X".into())),
                ("S".into(), Production::Pair("A".into(), "B".into())),
                ("X".into(), Production::Pair("S".into(), "B".into())),
                ("A".into(), Production::Term('a')),
                ("B".into(), Production::Term('b')),
            ],
        }
    }

    #[test]
    fn cyk_membership() {
        let g = g_anbn();
        assert!(g.order_condition_holds());
        assert!(g.accepts("ab"));
        assert!(g.accepts("aabb"));
        assert!(g.accepts("aaabbb"));
        assert!(!g.accepts("aab"));
        assert!(!g.accepts("ba"));
        assert!(!g.accepts(""));
    }

    #[test]
    fn derivations_yield_their_words() {
        let g = g_anbn();
        let d2 = g.derivations(2);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].word(), "ab");
        let d4 = g.derivations(4);
        assert_eq!(d4.len(), 1);
        assert_eq!(d4[0].word(), "aabb");
        assert!(g.derivations(3).is_empty());
    }

    #[test]
    fn wellformed_encoding_passes_constraints() {
        let g1 = g_anbn();
        let g2 = g_anbn();
        let d = &g1.derivations(4)[0];
        let enc = encode_pair(d, d);
        let mut alpha = enc.alpha.clone();
        for (i, q) in constraint_queries(&g1, &g2, &mut alpha, 8)
            .iter()
            .enumerate()
        {
            assert!(
                q.eval(&enc.doc).is_none(),
                "constraint {i} fired on a well-formed encoding"
            );
        }
        let q = mismatch_query(&mut alpha);
        assert!(q.eval(&enc.doc).is_none(), "equal words must not mismatch");
    }

    #[test]
    fn mismatch_detected_for_different_words() {
        let g1 = g_ab();
        let g2 = g_ba();
        let d1 = &g1.derivations(2)[0];
        let d2 = &g2.derivations(2)[0];
        assert_eq!(d1.word(), "ab");
        assert_eq!(d2.word(), "ba");
        let enc = encode_pair(d1, d2);
        let mut alpha = enc.alpha.clone();
        let q = mismatch_query(&mut alpha);
        assert!(q.eval(&enc.doc).is_some(), "ab vs ba must mismatch");
    }

    #[test]
    fn corrupted_successor_violates_constraints() {
        let g = g_ab();
        let d = &g.derivations(2)[0];
        let enc = encode_pair(d, d);
        // Corrupt one val2 so the successor structure breaks (set the
        // first terminal's val2 equal to its val1).
        let mut doc = enc.doc.clone();
        let val2 = enc.alpha.get("val2").unwrap();
        let victim = doc
            .preorder()
            .into_iter()
            .find(|&n| doc.label(n) == val2)
            .unwrap();
        doc.set_value(victim, Rat::ZERO); // val1 of position 0 is 0
        let mut alpha = enc.alpha.clone();
        let fired = constraint_queries(&g, &g, &mut alpha, 6)
            .iter()
            .any(|q| q.eval(&doc).is_some());
        assert!(fired, "a constraint must detect the corruption");
    }

    #[test]
    fn intersection_through_the_reduction() {
        // {ab} ∩ {ab} nonempty.
        assert_eq!(
            intersection_witness(&g_ab(), &g_ab2(), 3),
            Some("ab".to_string())
        );
        // {ab} ∩ {ba} empty.
        assert_eq!(intersection_witness(&g_ab(), &g_ba(), 3), None);
        // {a^n b^n} ∩ {ab} nonempty at length 2.
        assert_eq!(
            intersection_witness(&g_anbn(), &g_ab(), 4),
            Some("ab".to_string())
        );
    }
}
