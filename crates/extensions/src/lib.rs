#![warn(missing_docs)]

//! Section 4 extensions: richer queries and the hardness landscape.
//!
//! The paper's core framework is deliberately minimal; Section 4 charts
//! what happens beyond it. This crate implements each extension and the
//! explicit constructions behind the hardness results:
//!
//! * [`xquery`] — ps-queries extended with branching, optional (`?`) and
//!   negated (`¬`) subtrees, data-value variables with join conditions,
//!   and constructed answers (Skolem heads), evaluated on concrete data
//!   trees;
//! * [`regex`] — a small regular-expression engine over label paths
//!   (concatenation, union, star → NFA);
//! * [`sat`] — the 3-SAT reduction of Theorem 3.6 (possible-prefix is
//!   NP-hard in the query-answer sequence);
//! * [`dnf`] — the DNF-validity reduction of Theorem 4.1 (certain-prefix
//!   is co-NP-hard with branching + optional subtrees);
//! * [`dependencies`] — the FD + inclusion-dependency encoding of
//!   Theorem 4.5 (undecidability with branching, joins, negation);
//! * [`mod@cfg`] — the context-free-grammar intersection encoding of
//!   Theorem 4.7 (undecidability with recursive path expressions and
//!   joins);
//! * [`pebble`] — k-pebble tree automata over binary encodings of
//!   unranked trees (Theorem 4.2's representation system);
//! * [`order`] — the ordered-model discussion: when can answers over
//!   `a⋆b⋆` vs `(a+b)⋆` be merged?

pub mod cfg;
pub mod dependencies;
pub mod dnf;
pub mod order;
pub mod pebble;
pub mod regex;
pub mod sat;
pub mod xquery;
