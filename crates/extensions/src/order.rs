//! The order discussion at the end of Section 4.
//!
//! Suppose a flat ordered document contains `a` and `b` elements; query
//! `q1` returned the `a`s in document order and `q2` the `b`s. Can the
//! query for *all* elements (`q3`) be answered? The paper's observation:
//! it depends on the ordered type — under `a⋆b⋆` the interleaving is
//! forced (concatenate), under `(a+b)⋆` it is not, and a representation
//! system would have to track partial orders.
//!
//! [`merge_answers`] makes this executable: it enumerates the order-
//! preserving interleavings of the two answer lists, filters by the
//! ordered type (a regular expression over labels), and reports whether
//! the merge is unique.

use crate::regex::Regex;
use iixml_tree::Label;
use iixml_values::Rat;

/// Outcome of attempting to merge two ordered answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeResult {
    /// Exactly one interleaving conforms to the type: `q3` is
    /// answerable, and this is the answer.
    Unique(Vec<(Label, Rat)>),
    /// Several interleavings conform: the order information is genuinely
    /// missing.
    Ambiguous(usize),
    /// No interleaving conforms (the answers contradict the type).
    Inconsistent,
}

/// Enumerates the order-preserving interleavings of the `a` and `b`
/// answers accepted by the ordered type `ty` and classifies the result.
pub fn merge_answers(
    ty: &Regex,
    a_label: Label,
    a_items: &[Rat],
    b_label: Label,
    b_items: &[Rat],
) -> MergeResult {
    let nfa = ty.compile();
    let mut found: Vec<Vec<(Label, Rat)>> = Vec::new();
    let mut acc = Vec::new();
    fn go(
        nfa: &crate::regex::Nfa,
        a_label: Label,
        a: &[Rat],
        b_label: Label,
        b: &[Rat],
        acc: &mut Vec<(Label, Rat)>,
        found: &mut Vec<Vec<(Label, Rat)>>,
    ) {
        if found.len() > 1 {
            return; // two witnesses are enough to declare ambiguity
        }
        if a.is_empty() && b.is_empty() {
            let word: Vec<Label> = acc.iter().map(|&(l, _)| l).collect();
            if nfa.accepts(&word) {
                found.push(acc.clone());
            }
            return;
        }
        if let Some((&first, rest)) = a.split_first() {
            acc.push((a_label, first));
            go(nfa, a_label, rest, b_label, b, acc, found);
            acc.pop();
        }
        if let Some((&first, rest)) = b.split_first() {
            acc.push((b_label, first));
            go(nfa, a_label, a, b_label, rest, acc, found);
            acc.pop();
        }
    }
    go(
        &nfa, a_label, a_items, b_label, b_items, &mut acc, &mut found,
    );
    match found.len() {
        0 => MergeResult::Inconsistent,
        1 => MergeResult::Unique(found.into_iter().next().expect("len checked")),
        n => MergeResult::Ambiguous(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from(v)
    }

    const A: Label = Label(0);
    const B: Label = Label(1);

    fn a_star_b_star() -> Regex {
        Regex::cat(Regex::star(Regex::Sym(A)), Regex::star(Regex::Sym(B)))
    }

    fn any_mix() -> Regex {
        Regex::star(Regex::alt(Regex::Sym(A), Regex::Sym(B)))
    }

    fn strict_alternation() -> Regex {
        // (ab)*
        Regex::star(Regex::cat(Regex::Sym(A), Regex::Sym(B)))
    }

    #[test]
    fn a_star_b_star_is_unique() {
        let res = merge_answers(&a_star_b_star(), A, &[r(1), r(2)], B, &[r(3), r(4)]);
        match res {
            MergeResult::Unique(seq) => {
                let labels: Vec<Label> = seq.iter().map(|&(l, _)| l).collect();
                assert_eq!(labels, vec![A, A, B, B]);
            }
            other => panic!("expected unique merge, got {other:?}"),
        }
    }

    #[test]
    fn free_mixing_is_ambiguous() {
        let res = merge_answers(&any_mix(), A, &[r(1)], B, &[r(2)]);
        assert!(matches!(res, MergeResult::Ambiguous(_)));
        // With one side empty, even (a+b)* is unambiguous.
        let res = merge_answers(&any_mix(), A, &[r(1), r(2)], B, &[]);
        assert!(matches!(res, MergeResult::Unique(_)));
    }

    #[test]
    fn alternation_forces_the_interleaving() {
        let res = merge_answers(&strict_alternation(), A, &[r(1), r(3)], B, &[r(2), r(4)]);
        match res {
            MergeResult::Unique(seq) => {
                let labels: Vec<Label> = seq.iter().map(|&(l, _)| l).collect();
                assert_eq!(labels, vec![A, B, A, B]);
            }
            other => panic!("expected unique merge, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_counts_are_inconsistent() {
        // (ab)* requires equal counts.
        let res = merge_answers(&strict_alternation(), A, &[r(1), r(2)], B, &[r(9)]);
        assert_eq!(res, MergeResult::Inconsistent);
        // a*b* with nothing: the empty merge is unique.
        let res = merge_answers(&a_star_b_star(), A, &[], B, &[]);
        assert!(matches!(res, MergeResult::Unique(ref v) if v.is_empty()));
    }
}
