//! k-pebble tree automata (Theorem 4.2 and the surrounding discussion).
//!
//! The paper points out that for ordered trees and powerful restructuring
//! (but no data joins), k-pebble transducers/automata form a
//! representation system that stays polynomial in the query-answer
//! sequence — at the price of losing the user-friendly incomplete-tree
//! view and facing non-elementary emptiness (Theorem 4.3).
//!
//! This module implements the *acceptor* side on binary trees:
//!
//! * [`BinTree`] — the standard first-child/next-sibling encoding of
//!   unranked data trees;
//! * [`PebbleAutomaton`] — nondeterministic k-pebble automata with the
//!   paper's stack discipline (pebbles placed in order on the root,
//!   lifted in reverse order, only the highest moves);
//! * acceptance by exhaustive configuration search (the configuration
//!   space is `states × nodes^k`, so acceptance is decidable in
//!   polynomial time for fixed k — emptiness is where the
//!   non-elementary blowup lives).

use iixml_tree::{DataTree, Label, NodeRef};
use std::collections::{HashSet, VecDeque};

/// A node of a binary tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinNode {
    /// The node's label.
    pub label: Label,
    /// Left child (first child in the unranked original).
    pub left: Option<usize>,
    /// Right child (next sibling in the unranked original).
    pub right: Option<usize>,
    /// Parent (with which side we hang off it).
    pub parent: Option<(usize, Side)>,
}

/// Which child of its parent a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Left child.
    Left,
    /// Right child.
    Right,
}

/// A binary tree (arena; root = index 0).
#[derive(Clone, Debug)]
pub struct BinTree {
    /// The nodes.
    pub nodes: Vec<BinNode>,
}

impl BinTree {
    /// The standard first-child/next-sibling encoding of an unranked
    /// tree (labels preserved; data values dropped — the paper's pebble
    /// machinery ignores values, see Remark 4.4).
    pub fn from_unranked(t: &DataTree) -> BinTree {
        let mut nodes = Vec::with_capacity(t.len());
        fn encode(
            t: &DataTree,
            n: NodeRef,
            siblings: &[NodeRef],
            idx: usize,
            nodes: &mut Vec<BinNode>,
        ) -> usize {
            let me = nodes.len();
            nodes.push(BinNode {
                label: t.label(n),
                left: None,
                right: None,
                parent: None,
            });
            // First child chain.
            let kids = t.children(n);
            if !kids.is_empty() {
                let l = encode(t, kids[0], kids, 0, nodes);
                nodes[me].left = Some(l);
                nodes[l].parent = Some((me, Side::Left));
            }
            // Next sibling.
            if idx + 1 < siblings.len() {
                let r = encode(t, siblings[idx + 1], siblings, idx + 1, nodes);
                nodes[me].right = Some(r);
                nodes[r].parent = Some((me, Side::Right));
            }
            me
        }
        let root = t.root();
        encode(t, root, &[root], 0, &mut nodes);
        BinTree { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Binary trees are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A move of the current (highest-numbered) pebble, or a stack
/// operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Place a new pebble on the root (it becomes current).
    PlaceNew,
    /// Lift the current pebble (the previous one becomes current).
    Lift,
    /// Move the current pebble to its left child.
    DownLeft,
    /// Move the current pebble to its right child.
    DownRight,
    /// Move up, applicable only when the node is a left child.
    UpLeft,
    /// Move up, applicable only when the node is a right child.
    UpRight,
    /// Stay put (state-only transition).
    Stay,
}

/// A transition: applicable when the machine is in `state`, the current
/// node carries `label` (or any, when `None`), and the presence bitmask
/// of the lower pebbles on the current node matches `pebbles_here`
/// (`None` = don't care).
#[derive(Clone, Debug)]
pub struct Transition {
    /// Source state.
    pub state: usize,
    /// Required label under the current pebble (`None` = any).
    pub label: Option<Label>,
    /// Required presence of each lower pebble on the current node.
    pub pebbles_here: Option<Vec<bool>>,
    /// The move.
    pub action: Action,
    /// Target state.
    pub next: usize,
}

/// A nondeterministic k-pebble tree automaton.
#[derive(Clone, Debug)]
pub struct PebbleAutomaton {
    /// Number of states.
    pub states: usize,
    /// Maximum number of pebbles.
    pub k: usize,
    /// Initial state (computation starts with pebble 1 on the root).
    pub start: usize,
    /// Accepting state.
    pub accept: usize,
    /// The transitions.
    pub transitions: Vec<Transition>,
}

impl PebbleAutomaton {
    /// Does the automaton accept the tree? Exhaustive search over the
    /// configuration graph `(state, pebble positions)`.
    pub fn accepts(&self, t: &BinTree) -> bool {
        let initial = (self.start, vec![0usize]);
        let mut seen: HashSet<(usize, Vec<usize>)> = HashSet::new();
        let mut queue = VecDeque::from([initial.clone()]);
        seen.insert(initial);
        while let Some((state, pebbles)) = queue.pop_front() {
            if state == self.accept {
                return true;
            }
            let cur = *pebbles.last().expect("at least one pebble");
            let node = &t.nodes[cur];
            for tr in &self.transitions {
                if tr.state != state {
                    continue;
                }
                if let Some(l) = tr.label {
                    if node.label != l {
                        continue;
                    }
                }
                if let Some(mask) = &tr.pebbles_here {
                    let lower = &pebbles[..pebbles.len() - 1];
                    let ok = mask.iter().enumerate().all(|(i, &want)| {
                        let here = lower.get(i).is_some_and(|&p| p == cur);
                        here == want
                    });
                    if !ok {
                        continue;
                    }
                }
                let mut next_pebbles = pebbles.clone();
                let applicable = match tr.action {
                    Action::Stay => true,
                    Action::PlaceNew => {
                        if pebbles.len() < self.k {
                            next_pebbles.push(0);
                            true
                        } else {
                            false
                        }
                    }
                    Action::Lift => {
                        if pebbles.len() > 1 {
                            next_pebbles.pop();
                            true
                        } else {
                            false
                        }
                    }
                    Action::DownLeft => match node.left {
                        Some(c) => {
                            *next_pebbles.last_mut().unwrap() = c;
                            true
                        }
                        None => false,
                    },
                    Action::DownRight => match node.right {
                        Some(c) => {
                            *next_pebbles.last_mut().unwrap() = c;
                            true
                        }
                        None => false,
                    },
                    Action::UpLeft => match node.parent {
                        Some((p, Side::Left)) => {
                            *next_pebbles.last_mut().unwrap() = p;
                            true
                        }
                        _ => false,
                    },
                    Action::UpRight => match node.parent {
                        Some((p, Side::Right)) => {
                            *next_pebbles.last_mut().unwrap() = p;
                            true
                        }
                        _ => false,
                    },
                };
                if applicable {
                    let cfg = (tr.next, next_pebbles);
                    if seen.insert(cfg.clone()) {
                        queue.push_back(cfg);
                    }
                }
            }
        }
        false
    }

    /// A 1-pebble automaton accepting trees containing a node labeled
    /// `l` (nondeterministic walk to it).
    pub fn exists_label(l: Label) -> PebbleAutomaton {
        // state 0 = walking, 1 = accept.
        PebbleAutomaton {
            states: 2,
            k: 1,
            start: 0,
            accept: 1,
            transitions: vec![
                Transition {
                    state: 0,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownLeft,
                    next: 0,
                },
                Transition {
                    state: 0,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownRight,
                    next: 0,
                },
                Transition {
                    state: 0,
                    label: Some(l),
                    pebbles_here: None,
                    action: Action::Stay,
                    next: 1,
                },
            ],
        }
    }

    /// A 2-pebble automaton accepting trees containing two *distinct*
    /// nodes with label `l`: pebble 1 walks to an `l`-node and stays;
    /// pebble 2 walks to another `l`-node not carrying pebble 1.
    pub fn two_distinct_labeled(l: Label) -> PebbleAutomaton {
        // States: 0 = moving pebble 1, 1 = pebble 1 committed / moving
        // pebble 2, 2 = accept.
        let mut transitions = vec![];
        for action in [Action::DownLeft, Action::DownRight] {
            transitions.push(Transition {
                state: 0,
                label: None,
                pebbles_here: None,
                action,
                next: 0,
            });
        }
        // Commit pebble 1 on an l-node: place pebble 2 (lands on root).
        transitions.push(Transition {
            state: 0,
            label: Some(l),
            pebbles_here: None,
            action: Action::PlaceNew,
            next: 1,
        });
        for action in [Action::DownLeft, Action::DownRight] {
            transitions.push(Transition {
                state: 1,
                label: None,
                pebbles_here: None,
                action,
                next: 1,
            });
        }
        // Accept on an l-node where pebble 1 is absent.
        transitions.push(Transition {
            state: 1,
            label: Some(l),
            pebbles_here: Some(vec![false]),
            action: Action::Stay,
            next: 2,
        });
        PebbleAutomaton {
            states: 3,
            k: 2,
            start: 0,
            accept: 2,
            transitions,
        }
    }
}

/// An output step of a k-pebble *transducer*.
#[derive(Clone, Debug)]
pub enum OutputKind {
    /// Emit a leaf and halt this computation branch.
    Nullary,
    /// Emit a node and spawn two branches (inheriting all pebbles)
    /// computing the left and right output subtrees in the given states.
    Binary(usize, usize),
}

/// An output transition: applicable like a [`Transition`], but emits an
/// output node instead of moving.
#[derive(Clone, Debug)]
pub struct OutputTransition {
    /// Source state.
    pub state: usize,
    /// Required label under the current pebble (`None` = any).
    pub label: Option<Label>,
    /// Emitted output label.
    pub out_label: Label,
    /// Nullary (halt branch) or binary (spawn two branches).
    pub kind: OutputKind,
}

/// A deterministic k-pebble tree transducer (Section 4 / Theorem 4.2):
/// move transitions walk the input, output transitions build the output
/// tree top-down, each binary output spawning two independent branches
/// that inherit the pebble positions.
///
/// Determinization discipline: in each branch, the first *applicable*
/// move transition fires; only when no move applies does the first
/// matching output transition fire. This lets a state use inapplicable
/// moves (e.g. "go to the left child") with an output fallback ("no left
/// child: emit ⊥").
#[derive(Clone, Debug)]
pub struct PebbleTransducer {
    /// The underlying control (move transitions, k, start state).
    pub control: PebbleAutomaton,
    /// Output transitions (fallbacks when no move applies).
    pub outputs: Vec<OutputTransition>,
    /// Safety bound on total steps (transducers can diverge).
    pub max_steps: usize,
}

/// Errors from running a transducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransducerError {
    /// No applicable transition in some branch.
    Stuck {
        /// The state the branch was stuck in.
        state: usize,
    },
    /// The step bound was exhausted (likely divergence).
    StepLimit,
}

impl PebbleTransducer {
    /// Runs the transducer, producing the output binary tree.
    /// Deterministic: in each branch the first applicable output
    /// transition fires; otherwise the first applicable move transition.
    pub fn run(&self, t: &BinTree) -> Result<BinTree, TransducerError> {
        // Output arena; each branch owns an output slot to fill.
        #[derive(Clone)]
        struct Branch {
            state: usize,
            pebbles: Vec<usize>,
            slot: usize, // index into `out.nodes`
        }
        let mut out_nodes: Vec<BinNode> = vec![BinNode {
            label: Label(u32::MAX),
            left: None,
            right: None,
            parent: None,
        }];
        let mut branches = vec![Branch {
            state: self.control.start,
            pebbles: vec![0],
            slot: 0,
        }];
        let mut steps = 0usize;
        while let Some(br) = branches.pop() {
            steps += 1;
            if steps > self.max_steps {
                return Err(TransducerError::StepLimit);
            }
            let cur = *br.pebbles.last().expect("at least one pebble");
            let node = &t.nodes[cur];
            // Move transitions first.
            let mut moved = false;
            for tr in &self.control.transitions {
                if tr.state != br.state {
                    continue;
                }
                if let Some(l) = tr.label {
                    if node.label != l {
                        continue;
                    }
                }
                let mut pebbles = br.pebbles.clone();
                let applicable = match tr.action {
                    Action::Stay => true,
                    Action::PlaceNew => {
                        if pebbles.len() < self.control.k {
                            pebbles.push(0);
                            true
                        } else {
                            false
                        }
                    }
                    Action::Lift => {
                        if pebbles.len() > 1 {
                            pebbles.pop();
                            true
                        } else {
                            false
                        }
                    }
                    Action::DownLeft => match node.left {
                        Some(c) => {
                            *pebbles.last_mut().unwrap() = c;
                            true
                        }
                        None => false,
                    },
                    Action::DownRight => match node.right {
                        Some(c) => {
                            *pebbles.last_mut().unwrap() = c;
                            true
                        }
                        None => false,
                    },
                    Action::UpLeft => match node.parent {
                        Some((p, Side::Left)) => {
                            *pebbles.last_mut().unwrap() = p;
                            true
                        }
                        _ => false,
                    },
                    Action::UpRight => match node.parent {
                        Some((p, Side::Right)) => {
                            *pebbles.last_mut().unwrap() = p;
                            true
                        }
                        _ => false,
                    },
                };
                if applicable {
                    branches.push(Branch {
                        state: tr.next,
                        pebbles,
                        slot: br.slot,
                    });
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            // Output fallback.
            if let Some(ot) = self.outputs.iter().find(|ot| {
                ot.state == br.state && (ot.label.is_none() || ot.label == Some(node.label))
            }) {
                out_nodes[br.slot].label = ot.out_label;
                match ot.kind {
                    OutputKind::Nullary => {}
                    OutputKind::Binary(sl, sr) => {
                        let l = out_nodes.len();
                        out_nodes.push(BinNode {
                            label: Label(u32::MAX),
                            left: None,
                            right: None,
                            parent: Some((br.slot, Side::Left)),
                        });
                        let r = out_nodes.len();
                        out_nodes.push(BinNode {
                            label: Label(u32::MAX),
                            left: None,
                            right: None,
                            parent: Some((br.slot, Side::Right)),
                        });
                        out_nodes[br.slot].left = Some(l);
                        out_nodes[br.slot].right = Some(r);
                        branches.push(Branch {
                            state: sl,
                            pebbles: br.pebbles.clone(),
                            slot: l,
                        });
                        branches.push(Branch {
                            state: sr,
                            pebbles: br.pebbles,
                            slot: r,
                        });
                    }
                }
                continue;
            }
            return Err(TransducerError::Stuck { state: br.state });
        }
        Ok(BinTree { nodes: out_nodes })
    }

    /// The identity transducer over the given label alphabet: copies the
    /// input binary tree, padding absent children with `bottom` leaves.
    /// States: 0 = emit the current node, 1 = go to the left child,
    /// 2 = go to the right child.
    pub fn identity(labels: &[Label], bottom: Label) -> PebbleTransducer {
        let control = PebbleAutomaton {
            states: 3,
            k: 1,
            start: 0,
            accept: usize::MAX, // unused for transduction
            transitions: vec![
                Transition {
                    state: 1,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownLeft,
                    next: 0,
                },
                Transition {
                    state: 2,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownRight,
                    next: 0,
                },
            ],
        };
        // State 0 (no moves): emit the node's own label and branch into
        // the two child-seeking states. States 1/2 reach here only when
        // the child is absent: emit the ⊥ pad.
        let mut outputs: Vec<OutputTransition> = labels
            .iter()
            .map(|&l| OutputTransition {
                state: 0,
                label: Some(l),
                out_label: l,
                kind: OutputKind::Binary(1, 2),
            })
            .collect();
        for state in [1, 2] {
            outputs.push(OutputTransition {
                state,
                label: None,
                out_label: bottom,
                kind: OutputKind::Nullary,
            });
        }
        PebbleTransducer {
            control,
            outputs,
            max_steps: 100_000,
        }
    }

    /// A relabeling transducer: like [`PebbleTransducer::identity`] but
    /// mapping each label through `map` (pairs `(from, to)`).
    pub fn relabel(map: &[(Label, Label)], bottom: Label) -> PebbleTransducer {
        let labels: Vec<Label> = map.iter().map(|&(f, _)| f).collect();
        let mut t = PebbleTransducer::identity(&labels, bottom);
        for ot in &mut t.outputs {
            if let Some(from) = ot.label {
                if let Some(&(_, to)) = map.iter().find(|&&(f, _)| f == from) {
                    ot.out_label = to;
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_tree::{Alphabet, Nid};
    use iixml_values::Rat;

    fn tree(labels: &[(&str, &[usize])], alpha: &mut Alphabet) -> DataTree {
        // labels[i] = (name, children indices); index 0 = root.
        let l0 = alpha.intern(labels[0].0);
        let mut t = DataTree::new(Nid(0), l0, Rat::ZERO);
        let mut refs = vec![t.root()];
        // Build in index order: parents must precede children.
        for (i, &(name, _)) in labels.iter().enumerate().skip(1) {
            let parent = labels
                .iter()
                .position(|&(_, kids)| kids.contains(&i))
                .expect("every non-root has a parent");
            let l = alpha.intern(name);
            let r = t
                .add_child(refs[parent], Nid(i as u64), l, Rat::ZERO)
                .unwrap();
            refs.push(r);
        }
        t
    }

    #[test]
    fn binary_encoding_shape() {
        let mut alpha = Alphabet::new();
        // root with three children a, b, c.
        let t = tree(
            &[("root", &[1, 2, 3]), ("a", &[]), ("b", &[]), ("c", &[])],
            &mut alpha,
        );
        let bt = BinTree::from_unranked(&t);
        assert_eq!(bt.len(), 4);
        // root.left = a; a.right = b; b.right = c; no other edges.
        let root = &bt.nodes[0];
        let a = root.left.unwrap();
        assert_eq!(bt.nodes[a].label, alpha.get("a").unwrap());
        let b = bt.nodes[a].right.unwrap();
        assert_eq!(bt.nodes[b].label, alpha.get("b").unwrap());
        let c = bt.nodes[b].right.unwrap();
        assert_eq!(bt.nodes[c].label, alpha.get("c").unwrap());
        assert!(bt.nodes[c].right.is_none());
        assert!(root.right.is_none());
        assert_eq!(bt.nodes[a].parent, Some((0, Side::Left)));
        assert_eq!(bt.nodes[b].parent, Some((a, Side::Right)));
    }

    #[test]
    fn exists_label_automaton() {
        let mut alpha = Alphabet::new();
        let t = tree(
            &[("root", &[1, 2]), ("a", &[3]), ("b", &[]), ("c", &[])],
            &mut alpha,
        );
        let bt = BinTree::from_unranked(&t);
        let c = alpha.get("c").unwrap();
        let d = alpha.intern("d");
        assert!(PebbleAutomaton::exists_label(c).accepts(&bt));
        assert!(!PebbleAutomaton::exists_label(d).accepts(&bt));
        // The root label itself.
        let root_l = alpha.get("root").unwrap();
        assert!(PebbleAutomaton::exists_label(root_l).accepts(&bt));
    }

    #[test]
    fn two_distinct_labeled_automaton() {
        let mut alpha = Alphabet::new();
        // Two b's: accept.
        let t = tree(
            &[("root", &[1, 2, 3]), ("a", &[]), ("b", &[]), ("b", &[])],
            &mut alpha,
        );
        let bt = BinTree::from_unranked(&t);
        let b = alpha.get("b").unwrap();
        let a = alpha.get("a").unwrap();
        assert!(PebbleAutomaton::two_distinct_labeled(b).accepts(&bt));
        // Only one a: reject (needs two distinct).
        assert!(!PebbleAutomaton::two_distinct_labeled(a).accepts(&bt));
    }

    #[test]
    fn up_moves_respect_sides() {
        // Walk: root -> down-left -> up-left -> accept; the up-left move
        // applies only because the child hangs on the left.
        let mut alpha = Alphabet::new();
        let t = tree(&[("root", &[1]), ("a", &[])], &mut alpha);
        let bt = BinTree::from_unranked(&t);
        let make = |up: Action| PebbleAutomaton {
            states: 3,
            k: 1,
            start: 0,
            accept: 2,
            transitions: vec![
                Transition {
                    state: 0,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownLeft,
                    next: 1,
                },
                Transition {
                    state: 1,
                    label: None,
                    pebbles_here: None,
                    action: up,
                    next: 2,
                },
            ],
        };
        // The `a` node is a LEFT child in the encoding: UpLeft works,
        // UpRight does not.
        assert!(make(Action::UpLeft).accepts(&bt));
        assert!(!make(Action::UpRight).accepts(&bt));
        // With two children, the second sibling hangs right of the
        // first: reach it via DownLeft·DownRight, come back with
        // UpRight.
        let t2 = tree(&[("root", &[1, 2]), ("a", &[]), ("b", &[])], &mut alpha);
        let bt2 = BinTree::from_unranked(&t2);
        let walker = PebbleAutomaton {
            states: 4,
            k: 1,
            start: 0,
            accept: 3,
            transitions: vec![
                Transition {
                    state: 0,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownLeft,
                    next: 1,
                },
                Transition {
                    state: 1,
                    label: None,
                    pebbles_here: None,
                    action: Action::DownRight,
                    next: 2,
                },
                Transition {
                    state: 2,
                    label: Some(alpha.get("b").unwrap()),
                    pebbles_here: None,
                    action: Action::UpRight,
                    next: 3,
                },
            ],
        };
        assert!(walker.accepts(&bt2));
    }

    #[test]
    fn pebble_stack_discipline() {
        // PlaceNew beyond k is inapplicable; Lift of the last pebble is
        // inapplicable. An automaton trying to over-place simply cannot
        // reach accept.
        let mut alpha = Alphabet::new();
        let t = tree(&[("root", &[])], &mut alpha);
        let bt = BinTree::from_unranked(&t);
        let auto = PebbleAutomaton {
            states: 3,
            k: 1,
            start: 0,
            accept: 2,
            transitions: vec![
                Transition {
                    state: 0,
                    label: None,
                    pebbles_here: None,
                    action: Action::PlaceNew, // k=1: never applicable
                    next: 1,
                },
                Transition {
                    state: 1,
                    label: None,
                    pebbles_here: None,
                    action: Action::Stay,
                    next: 2,
                },
            ],
        };
        assert!(!auto.accepts(&bt));
    }

    /// Strips `bottom` pads from a transducer output for comparison.
    fn strip(
        t: &BinTree,
        at: usize,
        bottom: Label,
        out: &mut Vec<(Label, Option<usize>, Option<usize>)>,
    ) -> Option<usize> {
        let n = &t.nodes[at];
        if n.label == bottom {
            return None;
        }
        let l = n.left.and_then(|c| strip(t, c, bottom, out));
        let r = n.right.and_then(|c| strip(t, c, bottom, out));
        out.push((n.label, l, r));
        Some(out.len() - 1)
    }

    #[test]
    fn identity_transducer_copies_trees() {
        let mut alpha = Alphabet::new();
        let t = tree(
            &[("root", &[1, 2]), ("a", &[3]), ("b", &[]), ("c", &[])],
            &mut alpha,
        );
        let bt = BinTree::from_unranked(&t);
        let labels: Vec<Label> = alpha.labels().collect();
        let bottom = alpha.intern("_bot");
        let id = PebbleTransducer::identity(&labels, bottom);
        let out = id.run(&bt).unwrap();
        // Stripping the pads recovers the input structure.
        let mut got = Vec::new();
        let mut want = Vec::new();
        strip(&out, 0, bottom, &mut got);
        strip(&bt, 0, bottom, &mut want);
        assert_eq!(got, want, "identity transduction differs from input");
    }

    #[test]
    fn relabel_transducer() {
        let mut alpha = Alphabet::new();
        let t = tree(&[("root", &[1]), ("a", &[])], &mut alpha);
        let bt = BinTree::from_unranked(&t);
        let root_l = alpha.get("root").unwrap();
        let a = alpha.get("a").unwrap();
        let x = alpha.intern("x");
        let bottom = alpha.intern("_bot");
        let tr = PebbleTransducer::relabel(&[(root_l, root_l), (a, x)], bottom);
        let out = tr.run(&bt).unwrap();
        let labels: Vec<Label> = out
            .nodes
            .iter()
            .map(|n| n.label)
            .filter(|&l| l != bottom)
            .collect();
        assert!(labels.contains(&x), "a relabeled to x");
        assert!(!labels.contains(&a));
    }

    #[test]
    fn transducer_stuck_and_limits() {
        let mut alpha = Alphabet::new();
        let t = tree(&[("root", &[])], &mut alpha);
        let bt = BinTree::from_unranked(&t);
        // No transitions at all: stuck in the start state.
        let broken = PebbleTransducer {
            control: PebbleAutomaton {
                states: 1,
                k: 1,
                start: 0,
                accept: usize::MAX,
                transitions: vec![],
            },
            outputs: vec![],
            max_steps: 10,
        };
        assert_eq!(
            broken.run(&bt).err(),
            Some(TransducerError::Stuck { state: 0 })
        );
        // A self-loop diverges into the step limit.
        let diverging = PebbleTransducer {
            control: PebbleAutomaton {
                states: 1,
                k: 1,
                start: 0,
                accept: usize::MAX,
                transitions: vec![Transition {
                    state: 0,
                    label: None,
                    pebbles_here: None,
                    action: Action::Stay,
                    next: 0,
                }],
            },
            outputs: vec![],
            max_steps: 10,
        };
        assert_eq!(diverging.run(&bt).err(), Some(TransducerError::StepLimit));
    }

    #[test]
    fn agreement_with_direct_check_on_random_trees() {
        use iixml_gen::catalog;
        for seed in 0..3 {
            let c = catalog(6, seed);
            let bt = BinTree::from_unranked(&c.doc);
            let picture = c.alpha.get("picture").unwrap();
            let direct = c
                .doc
                .preorder()
                .iter()
                .filter(|&&n| c.doc.label(n) == picture)
                .count();
            assert_eq!(
                PebbleAutomaton::exists_label(picture).accepts(&bt),
                direct >= 1
            );
            assert_eq!(
                PebbleAutomaton::two_distinct_labeled(picture).accepts(&bt),
                direct >= 2
            );
        }
    }
}
