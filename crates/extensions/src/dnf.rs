//! The DNF-validity reduction of Theorem 4.1: with *branching* and
//! *optional subtrees*, deciding whether a tree is a certain prefix of
//! the answers `q′[rep(τ) ∩ q⁻¹(A)]` is co-NP-hard (over a fixed
//! four-letter alphabet).
//!
//! Construction (following the paper):
//! * the input type is `root → val`, `val → var⋆`, `var → x`; a document
//!   encodes an assignment: one `var` node per variable (value = index)
//!   with an `x` child holding 0/1;
//! * the pair `⟨q, A⟩` pins exactly one `var` per index with a Boolean
//!   `x` (realized here by the canonical-world family);
//! * `q′` has one *optional* `val`-subtree per disjunct, matching iff
//!   the assignment satisfies that disjunct;
//! * `root—val` is a certain prefix of the answers iff every assignment
//!   satisfies some disjunct — iff the DNF is valid.

use crate::xquery::{Modality, XQuery, XQueryBuilder};
use iixml_tree::{is_prefix_of, Alphabet, DataTree, Nid};
use iixml_values::{Cond, Rat};
use std::collections::HashSet;

/// A DNF formula with exactly three literals per disjunct (conjunct of
/// three literals). Literals are nonzero integers `±i`.
#[derive(Clone, Debug)]
pub struct Dnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The disjuncts.
    pub disjuncts: Vec<[i64; 3]>,
}

impl Dnf {
    /// Evaluates under an assignment.
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.disjuncts.iter().any(|d| {
            d.iter().all(|&lit| {
                let v = assign[(lit.unsigned_abs() as usize) - 1];
                if lit > 0 {
                    v
                } else {
                    !v
                }
            })
        })
    }

    /// Brute-force validity (the test oracle).
    pub fn brute_force_valid(&self) -> bool {
        (0..(1u32 << self.num_vars)).all(|bits| {
            let assign: Vec<bool> = (0..self.num_vars).map(|i| bits & (1 << i) != 0).collect();
            self.eval(&assign)
        })
    }
}

/// The fixed alphabet of the reduction.
pub fn alphabet() -> Alphabet {
    Alphabet::from_names(["root", "val", "var", "x"])
}

/// The canonical world for an assignment.
pub fn world(alpha: &Alphabet, assign: &[bool]) -> DataTree {
    let root = alpha.get("root").unwrap();
    let val = alpha.get("val").unwrap();
    let var = alpha.get("var").unwrap();
    let x = alpha.get("x").unwrap();
    let mut t = DataTree::new(Nid(0), root, Rat::ZERO);
    let v = t.add_child(t.root(), Nid(1), val, Rat::ZERO).unwrap();
    for (i, &b) in assign.iter().enumerate() {
        let vr = t
            .add_child(v, Nid(10 + 2 * i as u64), var, Rat::from(i as i64 + 1))
            .unwrap();
        t.add_child(vr, Nid(11 + 2 * i as u64), x, Rat::from(b as i64))
            .unwrap();
    }
    t
}

/// The query `q′`: one optional `val`-subtree per disjunct, each
/// requiring the disjunct's three variables to carry the right `x`
/// values (branching: multiple `var` children under one `val`).
pub fn q_prime(alpha: &mut Alphabet, dnf: &Dnf) -> XQuery {
    let mut b = XQueryBuilder::new(alpha, "root", Cond::True);
    let root = b.root();
    for d in &dnf.disjuncts {
        let val = b.child(root, "val", Cond::True, Modality::Optional);
        for &lit in d {
            let idx = lit.unsigned_abs() as i64;
            let want = i64::from(lit > 0);
            let var = b.child(val, "var", Cond::eq(Rat::from(idx)), Modality::Plain);
            b.child(var, "x", Cond::eq(Rat::from(want)), Modality::Plain);
        }
    }
    b.build()
}

/// The certain-prefix decision of Theorem 4.1: is `root—val` a certain
/// prefix of `q′`'s answers over all assignments? Decided by scanning
/// the canonical worlds (the finite-representative argument) and
/// evaluating the extended query on each.
pub fn certain_prefix_root_val(dnf: &Dnf) -> bool {
    let mut alpha = alphabet();
    let q = q_prime(&mut alpha, dnf);
    let root = alpha.get("root").unwrap();
    let val = alpha.get("val").unwrap();
    // Target prefix: root—val, pinned to the ids the answers carry.
    let mut target = DataTree::new(Nid(0), root, Rat::ZERO);
    target
        .add_child(target.root(), Nid(1), val, Rat::ZERO)
        .unwrap();
    let pinned: HashSet<Nid> = [Nid(0), Nid(1)].into();
    (0..(1u32 << dnf.num_vars)).all(|bits| {
        let assign: Vec<bool> = (0..dnf.num_vars).map(|i| bits & (1 << i) != 0).collect();
        let w = world(&alpha, &assign);
        match q.eval(&w) {
            None => false, // no valuation at all (cannot happen: root matches)
            Some(answer) => is_prefix_of(&target, &answer, &pinned),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases() -> Vec<(Dnf, bool)> {
        vec![
            // x1 ∨ ¬x1: valid.
            (
                Dnf {
                    num_vars: 1,
                    disjuncts: vec![[1, 1, 1], [-1, -1, -1]],
                },
                true,
            ),
            // x1 alone: not valid.
            (
                Dnf {
                    num_vars: 1,
                    disjuncts: vec![[1, 1, 1]],
                },
                false,
            ),
            // (x1∧x2) ∨ (¬x1) ∨ (¬x2): valid.
            (
                Dnf {
                    num_vars: 2,
                    disjuncts: vec![[1, 2, 2], [-1, -1, -1], [-2, -2, -2]],
                },
                true,
            ),
            // (x1∧x2) ∨ (¬x1∧¬x2): not valid (mixed assignments fail).
            (
                Dnf {
                    num_vars: 2,
                    disjuncts: vec![[1, 2, 2], [-1, -2, -2]],
                },
                false,
            ),
            // 3 vars: all eight sign patterns -> valid.
            (
                Dnf {
                    num_vars: 3,
                    disjuncts: vec![
                        [1, 2, 3],
                        [1, 2, -3],
                        [1, -2, 3],
                        [1, -2, -3],
                        [-1, 2, 3],
                        [-1, 2, -3],
                        [-1, -2, 3],
                        [-1, -2, -3],
                    ],
                },
                true,
            ),
        ]
    }

    #[test]
    fn brute_force_matches_expectation() {
        for (dnf, expect) in cases() {
            assert_eq!(dnf.brute_force_valid(), expect);
        }
    }

    #[test]
    fn reduction_decides_validity() {
        for (dnf, expect) in cases() {
            assert_eq!(
                certain_prefix_root_val(&dnf),
                expect,
                "reduction disagrees on {dnf:?}"
            );
        }
    }

    #[test]
    fn answers_contain_val_exactly_when_a_disjunct_fires() {
        let dnf = Dnf {
            num_vars: 2,
            disjuncts: vec![[1, 2, 2]],
        };
        let mut alpha = alphabet();
        let q = q_prime(&mut alpha, &dnf);
        // x1=1, x2=1: disjunct fires, val in answer.
        let w = world(&alpha, &[true, true]);
        let a = q.eval(&w).unwrap();
        assert!(a.by_nid(Nid(1)).is_some());
        // x1=1, x2=0: disjunct fails, answer is just the root.
        let w = world(&alpha, &[true, false]);
        let a = q.eval(&w).unwrap();
        assert_eq!(a.len(), 1);
    }
}
