//! A small regular-expression engine over label alphabets.
//!
//! Recursive path expressions (Theorem 4.7) label query edges with
//! regular languages of element-name paths. This module provides the
//! classic syntax tree → Thompson NFA pipeline with subset-free
//! simulation (NFA state sets), which is all the path evaluator needs.

use iixml_tree::Label;
use std::collections::HashSet;

/// A regular expression over [`Label`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty word ε.
    Eps,
    /// A single label.
    Sym(Label),
    /// Any single label (wildcard `.`; the paper's `Σ`).
    Any,
    /// Concatenation.
    Cat(Box<Regex>, Box<Regex>),
    /// Union.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// `r1 · r2`
    pub fn cat(a: Regex, b: Regex) -> Regex {
        Regex::Cat(Box::new(a), Box::new(b))
    }

    /// `r1 | r2`
    pub fn alt(a: Regex, b: Regex) -> Regex {
        Regex::Alt(Box::new(a), Box::new(b))
    }

    /// `r⋆`
    pub fn star(a: Regex) -> Regex {
        Regex::Star(Box::new(a))
    }

    /// `Σ⋆` (the paper's `⋆` edge shortcut).
    pub fn any_star() -> Regex {
        Regex::star(Regex::Any)
    }

    /// Concatenation of a sequence of labels (a fixed path).
    pub fn word(labels: &[Label]) -> Regex {
        labels
            .iter()
            .fold(Regex::Eps, |acc, &l| Regex::cat(acc, Regex::Sym(l)))
    }

    /// Compiles to an NFA.
    pub fn compile(&self) -> Nfa {
        let mut nfa = Nfa {
            eps: vec![Vec::new(), Vec::new()],
            step: vec![Vec::new(), Vec::new()],
            start: 0,
            accept: 1,
        };
        let (s, a) = (0, 1);
        nfa.build(self, s, a);
        nfa
    }
}

/// A Thompson NFA with ε-transitions.
#[derive(Clone, Debug)]
pub struct Nfa {
    eps: Vec<Vec<usize>>,
    step: Vec<Vec<(Option<Label>, usize)>>, // None = wildcard
    start: usize,
    accept: usize,
}

impl Nfa {
    fn fresh(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.step.push(Vec::new());
        self.eps.len() - 1
    }

    fn build(&mut self, r: &Regex, from: usize, to: usize) {
        match r {
            Regex::Eps => self.eps[from].push(to),
            Regex::Sym(l) => self.step[from].push((Some(*l), to)),
            Regex::Any => self.step[from].push((None, to)),
            Regex::Cat(a, b) => {
                let mid = self.fresh();
                self.build(a, from, mid);
                self.build(b, mid, to);
            }
            Regex::Alt(a, b) => {
                self.build(a, from, to);
                self.build(b, from, to);
            }
            Regex::Star(a) => {
                let hub = self.fresh();
                self.eps[from].push(hub);
                self.eps[hub].push(to);
                self.build(a, hub, hub);
            }
        }
    }

    /// The ε-closure of a state set.
    pub fn closure(&self, states: &HashSet<usize>) -> HashSet<usize> {
        let mut out = states.clone();
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if out.insert(t) {
                    stack.push(t);
                }
            }
        }
        out
    }

    /// The initial state set.
    pub fn start_set(&self) -> HashSet<usize> {
        self.closure(&HashSet::from([self.start]))
    }

    /// One transition on a label.
    pub fn advance(&self, states: &HashSet<usize>, l: Label) -> HashSet<usize> {
        let mut next = HashSet::new();
        for &s in states {
            for &(sym, t) in &self.step[s] {
                if sym.is_none() || sym == Some(l) {
                    next.insert(t);
                }
            }
        }
        self.closure(&next)
    }

    /// Is the state set accepting?
    pub fn accepting(&self, states: &HashSet<usize>) -> bool {
        states.contains(&self.accept)
    }

    /// Full-word acceptance test.
    pub fn accepts(&self, word: &[Label]) -> bool {
        let mut cur = self.start_set();
        for &l in word {
            cur = self.advance(&cur, l);
            if cur.is_empty() {
                return false;
            }
        }
        self.accepting(&cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Label {
        Label(i)
    }

    #[test]
    fn literals_and_concat() {
        let r = Regex::word(&[l(0), l(1)]);
        let n = r.compile();
        assert!(n.accepts(&[l(0), l(1)]));
        assert!(!n.accepts(&[l(0)]));
        assert!(!n.accepts(&[l(1), l(0)]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn eps_and_star() {
        let n = Regex::Eps.compile();
        assert!(n.accepts(&[]));
        assert!(!n.accepts(&[l(0)]));
        let n = Regex::star(Regex::Sym(l(0))).compile();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[l(0), l(0), l(0)]));
        assert!(!n.accepts(&[l(0), l(1)]));
    }

    #[test]
    fn union() {
        let r = Regex::alt(Regex::Sym(l(0)), Regex::word(&[l(1), l(2)]));
        let n = r.compile();
        assert!(n.accepts(&[l(0)]));
        assert!(n.accepts(&[l(1), l(2)]));
        assert!(!n.accepts(&[l(1)]));
    }

    #[test]
    fn wildcard_star() {
        let n = Regex::any_star().compile();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[l(0), l(5), l(9)]));
        // sigma* . a
        let r = Regex::cat(Regex::any_star(), Regex::Sym(l(7)));
        let n = r.compile();
        assert!(n.accepts(&[l(7)]));
        assert!(n.accepts(&[l(1), l(2), l(7)]));
        assert!(!n.accepts(&[l(7), l(1)]));
    }

    #[test]
    fn complex_combination() {
        // (a|b)* c
        let r = Regex::cat(
            Regex::star(Regex::alt(Regex::Sym(l(0)), Regex::Sym(l(1)))),
            Regex::Sym(l(2)),
        );
        let n = r.compile();
        assert!(n.accepts(&[l(2)]));
        assert!(n.accepts(&[l(0), l(1), l(0), l(2)]));
        assert!(!n.accepts(&[l(0), l(2), l(1)]));
    }
}
