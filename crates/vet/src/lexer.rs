//! A token-level Rust lexer, exactly precise enough for lint rules.
//!
//! The rules in this crate key off method names, paths, and literals.
//! Regex-over-lines would misfire on `unwrap()` inside a doc comment,
//! a raw string containing `panic!`, or the char literal `'"'` — so
//! this lexer handles every Rust token shape that changes where code
//! ends and data begins:
//!
//! * line and (nested) block comments, including doc comments;
//! * string literals with escapes, byte strings, and raw (byte)
//!   strings with any `#` count;
//! * char literals (including `'"'`, `'\''`, `'\u{...}'`) versus
//!   lifetimes (`'a`, `'static`) and loop labels;
//! * identifiers, numbers, and single-char punctuation.
//!
//! It does **not** parse: rules pattern-match the token stream. That
//! is the deliberate altitude — a full parser would be overkill for
//! "no stray `IIXJWAL` literal", and line regexes are not enough.
//! False-positive hygiene is pinned by `fixtures/lexer_torture.rs`.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime or loop label (`'a`), without the quote.
    Lifetime,
    /// String literal of any flavor (`"…"`, `b"…"`, `r#"…"#`, …),
    /// text includes delimiters.
    Str,
    /// Char or byte-char literal, text includes quotes.
    Char,
    /// Numeric literal (integer part only; `1.5` is `1` `.` `5`).
    Num,
    /// One punctuation character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text (delimiters included for literals).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// The interior of a string literal: delimiters, `r`/`b` prefixes,
    /// and raw-string hashes stripped. Escapes are left as written —
    /// the rules only match escape-free needles.
    pub fn str_content(&self) -> &str {
        let mut s = self.text.as_str();
        while let Some(rest) = s
            .strip_prefix('b')
            .or_else(|| s.strip_prefix('r'))
            .or_else(|| s.strip_prefix('#'))
        {
            s = rest;
        }
        let s = s.strip_prefix('"').unwrap_or(s);
        let mut e = s;
        while let Some(rest) = e.strip_suffix('#') {
            e = rest;
        }
        e.strip_suffix('"').unwrap_or(e)
    }
}

/// Lexes `src` into tokens, skipping comments and whitespace. Total:
/// any input produces a token list, never a panic; malformed trailing
/// constructs (unterminated strings or comments) yield one final token
/// holding the rest of the input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.b.len() {
            let line = self.line;
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string(line) => {}
                b'"' => self.string(line),
                b'\'' => self.quote(line),
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.push(TokKind::Punct(c as char), self.pos, self.pos + 1, line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.out.push(Token {
            kind,
            text: self.src[start..end.min(self.src.len())].to_string(),
            line,
        });
    }

    fn bump_lines(&mut self, start: usize, end: usize) {
        self.line += self.b[start..end.min(self.b.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            if self.b[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.b[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.bump_lines(start, self.pos);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns
    /// false when the `r`/`b` turns out to start a plain identifier,
    /// leaving `self.pos` untouched.
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let start = self.pos;
        let mut i = self.pos + 1;
        let mut is_raw = self.b[start] == b'r';
        if self.b[start] == b'b' {
            if self.b.get(i) == Some(&b'\'') {
                // Byte char b'x'.
                self.pos = i;
                self.char_literal(start, line);
                return true;
            }
            if self.b.get(i) == Some(&b'r') {
                is_raw = true;
                i += 1;
            }
        }
        if !is_raw {
            // Plain byte string b"…": escape-aware scan.
            if self.b.get(i) == Some(&b'"') {
                self.pos = i;
                self.string_from(start, line);
                return true;
            }
            return false;
        }
        let hashes_start = i;
        while self.b.get(i) == Some(&b'#') {
            i += 1;
        }
        let hashes = i - hashes_start;
        if self.b.get(i) != Some(&b'"') {
            return false; // `r` / `br` starting an identifier
        }
        // Raw string: no escapes; ends at `"` followed by `hashes` `#`s.
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        let mut j = i + 1;
        while j < self.b.len() && !self.b[j..].starts_with(&closer) {
            j += 1;
        }
        let j = (j + closer.len()).min(self.b.len());
        self.bump_lines(start, j);
        self.push(TokKind::Str, start, j, line);
        self.pos = j;
        true
    }

    fn string(&mut self, line: u32) {
        let start = self.pos;
        self.string_from(start, line);
    }

    /// Scans a `"`-delimited string starting at `self.pos` (which must
    /// point at the opening quote); the token starts at `start` so
    /// `b"…"` keeps its prefix.
    fn string_from(&mut self, start: usize, line: u32) {
        let mut j = self.pos + 1;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let j = j.min(self.b.len());
        self.bump_lines(start, j);
        self.push(TokKind::Str, start, j, line);
        self.pos = j;
    }

    /// A `'`: char literal, lifetime, or loop label.
    fn quote(&mut self, line: u32) {
        let start = self.pos;
        match self.peek(1) {
            // '\…' is always a char literal.
            Some(b'\\') => self.char_literal(start, line),
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 => {
                // 'x' (closing quote right after one char) is a char
                // literal; otherwise a lifetime like 'a, 'static.
                if self.peek(2) == Some(b'\'') {
                    self.char_literal(start, line);
                } else {
                    let mut j = self.pos + 1;
                    while j < self.b.len()
                        && (self.b[j] == b'_'
                            || self.b[j].is_ascii_alphanumeric()
                            || self.b[j] >= 0x80)
                    {
                        j += 1;
                    }
                    self.push(TokKind::Lifetime, start, j, line);
                    self.pos = j;
                }
            }
            // Anything else ('"', '[', …) is a char literal.
            _ => self.char_literal(start, line),
        }
    }

    /// Scans from the opening `'` at `self.pos` to the closing `'`.
    fn char_literal(&mut self, start: usize, line: u32) {
        let mut j = self.pos + 1;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'\'' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let j = j.min(self.b.len());
        self.push(TokKind::Char, start, j, line);
        self.pos = j;
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        let mut j = self.pos;
        // Walk char-wise so multi-byte identifiers stay whole.
        for (off, ch) in self.src[start..].char_indices() {
            if ch == '_' || ch.is_alphanumeric() {
                j = start + off + ch.len_utf8();
            } else {
                break;
            }
        }
        if j == start {
            // A multi-byte char that is not alphanumeric (an em dash in
            // prose, an arrow in a diagram). Emit it as punctuation —
            // the important part is that the lexer always advances.
            let width = self.src[start..].chars().next().map_or(1, char::len_utf8);
            self.push(TokKind::Punct('\u{FFFD}'), start, start + width, line);
            self.pos = start + width;
            return;
        }
        self.push(TokKind::Ident, start, j, line);
        self.pos = j;
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        let mut j = self.pos;
        while j < self.b.len() && (self.b[j] == b'_' || self.b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        self.push(TokKind::Num, start, j, line);
        self.pos = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_hide_code() {
        let toks = kinds("a // x.unwrap()\nb /* panic! /* nested */ still */ c");
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r####"let s = r#"quote " and .unwrap() inside"#; x"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn byte_strings() {
        let toks = kinds(r###"f(b"REC!"); g(br##"IIXJWAL"##);"###);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r#"b"REC!""#, r###"br##"IIXJWAL"##"###]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c = '\"'; let d: &'a str = x; 'outer: loop {} '\\''");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'\"'", "'\\''"]);
        let lifes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifes, ["'a", "'outer"]);
    }

    #[test]
    fn str_content_strips_delimiters() {
        for (src, want) in [
            (r#""IIXML_OBS""#, "IIXML_OBS"),
            (r#"b"REC!""#, "REC!"),
            (r###"r#"core.x"#"###, "core.x"),
            (r####"br##"x"##"####, "x"),
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].str_content(), want, "{src}");
        }
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("a\n\"two\nline\"\nb /*\n*/ c");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(5));
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"", "'a"] {
            let _ = lex(src);
        }
    }
}
