//! The rule catalog. Each rule is a pure function from a lexed
//! [`SourceFile`] to findings; scoping (which crates, whether test
//! code counts) lives with the rule so the catalog in DESIGN.md §10
//! reads top to bottom as the single source of truth.

use crate::lexer::{TokKind, Token};
use crate::source::{balanced, FileKind, SourceFile};
use crate::Finding;

/// Crates whose non-test code must be panic-free (plus root `src/`):
/// these sit on the `rep(T)` data path, where a panic loses session
/// knowledge mid-refine — and in the server, takes every tenant's
/// connection down with it.
const PANIC_CRATES: &[&str] = &[
    "core", "query", "mediator", "webhouse", "store", "serve", "contain",
];

/// Crates whose outputs are compared byte-for-byte across runs and
/// thread widths; `RandomState`-ordered containers are banned here.
const HASH_ORDER_CRATES: &[&str] = &[
    "core", "query", "mediator", "webhouse", "store", "serve", "contain",
];

/// The frozen on-disk alphabet (see `crates/store/src/format.rs`).
/// Spelled here *independently* so an edit to the registry trips the
/// vet pass rather than silently re-freezing the format.
pub const FROZEN_MAGICS: &[(&str, &str)] = &[
    ("SEGMENT_MAGIC", "IIXJWAL"),
    ("FRAME_MAGIC", "REC!"),
    ("SNAPSHOT_MAGIC", "IIXSNAP"),
];

/// The frozen WAL record tag bytes.
pub const FROZEN_TAGS: &[(&str, &str)] = &[
    ("TAG_OPEN", "1"),
    ("TAG_REFINE", "2"),
    ("TAG_SOURCE_UPDATE", "3"),
    ("TAG_QUARANTINE", "4"),
    ("TAG_SNAPSHOT_REF", "5"),
];

/// The registry module for on-disk spellings.
pub const FORMAT_REGISTRY: &str = "crates/store/src/format.rs";
/// The registry module for metric keys and env vars.
pub const KEYS_REGISTRY: &str = "crates/obs/src/keys.rs";

/// Keywords that may directly precede a `[` without it being an index
/// expression (`if let [a, b] = …`, `return [x]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

fn in_crates(f: &SourceFile, names: &[&str]) -> bool {
    match (&f.crate_name, f.kind) {
        (Some(c), FileKind::CrateSrc) => names.contains(&c.as_str()),
        (None, FileKind::RootSrc) => true,
        _ => false,
    }
}

fn finding(f: &SourceFile, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: f.path.clone(),
        line,
        message,
    }
}

/// `panic`: no `unwrap`/`expect`/`panic!`-family in non-test code of
/// the data-path crates; `panic-index` flags index expressions there.
/// The split matters for the allowlist: index survivors are waived per
/// file (`panic-index | path | * | reason` citing the module's bounds
/// discipline) without also waiving `unwrap`, which stays per-line.
/// `.expect(…)?` (a user-defined fallible method, as in `core::io`'s
/// parser) is not `Result::expect` and is skipped.
pub fn panic_freedom(f: &SourceFile, out: &mut Vec<Finding>) {
    if !in_crates(f, PANIC_CRATES) {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if f.skip(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(…)` not followed by `?`.
        if t.kind == TokKind::Punct('.')
            && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct('('))
        {
            if toks[i + 1].is_ident("unwrap") {
                out.push(finding(
                    f,
                    "panic",
                    toks[i + 1].line,
                    ".unwrap() in non-test code (return a typed error, or add a vet.allow entry with a reason)".into(),
                ));
            } else if toks[i + 1].is_ident("expect") {
                let fallible = balanced(toks, i + 2, '(', ')')
                    .and_then(|c| toks.get(c + 1))
                    .is_some_and(|n| n.kind == TokKind::Punct('?'));
                if !fallible {
                    out.push(finding(
                        f,
                        "panic",
                        toks[i + 1].line,
                        ".expect() in non-test code (return a typed error, or add a vet.allow entry with a reason)".into(),
                    ));
                }
            }
        }
        // panic!-family macros.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct('!'))
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push(finding(
                f,
                "panic",
                t.line,
                format!(
                    "{}! in non-test code (make the state unrepresentable or return an error)",
                    t.text
                ),
            ));
        }
        // Index expressions: `expr[…]` can panic on out-of-bounds.
        if t.kind == TokKind::Punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let is_expr_pos = match prev.kind {
                TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if is_expr_pos && !f.in_attr[i - 1] {
                out.push(finding(
                    f,
                    "panic-index",
                    t.line,
                    "index expression can panic (prefer .get()/ranges checked upstream, or add a vet.allow entry citing the bounds guarantee)".into(),
                ));
            }
        }
    }
}

/// `net-timeout`: in `iixml-serve`'s non-test code, every socket
/// read/write method call must be preceded — in the same `fn` — by the
/// matching deadline-arming call (`set_read_timeout` /
/// `set_write_timeout`). An unarmed blocking read lets one slow-loris
/// client pin a connection thread forever; the rule makes "the deadline
/// is visibly armed next to the syscall" a mechanical invariant rather
/// than a review convention. Token-level, so any `.read(…)`-shaped call
/// counts regardless of receiver type: file and buffer I/O in the serve
/// crate must route through helpers armed the same way or live outside
/// the crate.
pub fn net_timeout(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.crate_name.as_deref() != Some("serve") || f.kind != FileKind::CrateSrc {
        return;
    }
    const READS: &[&str] = &["read", "read_exact", "read_to_end", "read_to_string"];
    const WRITES: &[&str] = &["write", "write_all"];
    let toks = &f.tokens;
    let (mut armed_read, mut armed_write) = (false, false);
    for i in 0..toks.len() {
        let t = &toks[i];
        // Each fn starts with its deadlines unarmed; arming in one
        // function never licenses a read in another.
        if t.is_ident("fn") {
            armed_read = false;
            armed_write = false;
        }
        if f.skip(i) {
            continue;
        }
        if t.is_ident("set_read_timeout") {
            armed_read = true;
        }
        if t.is_ident("set_write_timeout") {
            armed_write = true;
        }
        // Method-call position only: `.name(`.
        if t.kind != TokKind::Punct('.')
            || toks.get(i + 2).map(|t| t.kind) != Some(TokKind::Punct('('))
        {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if m.kind != TokKind::Ident {
            continue;
        }
        if READS.contains(&m.text.as_str()) && !armed_read {
            out.push(finding(
                f,
                "net-timeout",
                m.line,
                format!(
                    ".{}() with no earlier set_read_timeout in the same fn — an unarmed socket read blocks a connection thread forever (slow-loris)",
                    m.text
                ),
            ));
        }
        if WRITES.contains(&m.text.as_str()) && !armed_write {
            out.push(finding(
                f,
                "net-timeout",
                m.line,
                format!(
                    ".{}() with no earlier set_write_timeout in the same fn — an unarmed socket write blocks on a stalled peer",
                    m.text
                ),
            ));
        }
    }
}

/// Durability-bearing operations whose `Result` must be acknowledged
/// in `iixml-store` (see `io-ack`): the write path's syscall surface.
const IO_ACK_OPS: &[&str] = &[
    "write_all",
    "write_batch",
    "sync",
    "sync_data",
    "sync_all",
    "dir_sync",
    "rename",
    "remove_file",
    "set_len",
];

/// `io-ack`: in `iixml-store`'s non-test code, the `Result` of a
/// durability-bearing operation (write/sync/rename/remove and friends)
/// must not be discarded with `let _ =` or collapsed to a bare
/// `.ok()`/`.is_ok()`. A swallowed write error is the worst storage bug
/// class: the caller believes the bytes are durable and the loss
/// surfaces only after the crash (the "fsyncgate" pattern). Handle the
/// error — poison the writer, bump `store.io_faults`, propagate — or
/// don't make the call. `.is_err()` is deliberately allowed: it reads
/// as explicit failure-handling, not discard.
pub fn io_ack(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.crate_name.as_deref() != Some("store") || f.kind != FileKind::CrateSrc {
        return;
    }
    let toks = &f.tokens;
    let is_op_call = |i: usize| -> bool {
        toks[i].kind == TokKind::Ident
            && IO_ACK_OPS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Punct('('))
    };
    for i in 0..toks.len() {
        if f.skip(i) {
            continue;
        }
        // `let _ = <expr with a durability call> ;`
        if toks[i].is_ident("let")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("_"))
            && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct('='))
        {
            let mut j = i + 3;
            while j < toks.len() && toks[j].kind != TokKind::Punct(';') {
                if is_op_call(j) {
                    out.push(finding(
                        f,
                        "io-ack",
                        toks[j].line,
                        format!(
                            "`let _ =` discards the Result of {}() — a failed durability operation must poison the writer or propagate, never vanish",
                            toks[j].text
                        ),
                    ));
                    break;
                }
                j += 1;
            }
        }
        // `.op(…).ok()` / `.op(…).is_ok()` — the error is melted into a
        // boolean or dropped; nothing records that durability failed.
        if is_op_call(i) {
            let bare = balanced(toks, i + 1, '(', ')').is_some_and(|close| {
                toks.get(close + 1).map(|t| t.kind) == Some(TokKind::Punct('.'))
                    && toks
                        .get(close + 2)
                        .is_some_and(|n| n.is_ident("ok") || n.is_ident("is_ok"))
                    && toks.get(close + 3).map(|t| t.kind) == Some(TokKind::Punct('('))
            });
            if bare {
                out.push(finding(
                    f,
                    "io-ack",
                    toks[i].line,
                    format!(
                        "bare .ok()/.is_ok() on {}() swallows a durability failure — record a sticky fault (store.io_faults) or propagate the error",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}

/// `determinism`: no wall clock, no monotonic clock outside
/// timing-infrastructure crates, no `RandomState`-ordered containers
/// in byte-reproducible crates, no unseeded randomness anywhere.
pub fn determinism(f: &SourceFile, out: &mut Vec<Finding>) {
    let crate_is = |name: &str| f.crate_name.as_deref() == Some(name);
    let clock_scope =
        matches!(f.kind, FileKind::CrateSrc | FileKind::RootSrc) && !crate_is("bench");
    let hash_scope = in_crates(f, HASH_ORDER_CRATES);
    if !clock_scope && !hash_scope {
        return;
    }
    let toks = &f.tokens;
    let mut stmt_has_use = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        // Track whether the current statement is a `use` declaration.
        match t.kind {
            TokKind::Punct(';') | TokKind::Punct('}') => stmt_has_use = false,
            // A `{` inside a `use` statement is a grouped import
            // (`use x::{HashMap, …}`) and stays part of it; any other
            // `{` starts a new scope.
            TokKind::Punct('{') if !stmt_has_use => stmt_has_use = false,
            TokKind::Ident if t.text == "use" => stmt_has_use = true,
            _ => {}
        }
        if f.skip(i) {
            continue;
        }
        if clock_scope {
            if t.is_ident("SystemTime") {
                out.push(finding(
                    f,
                    "determinism",
                    t.line,
                    "SystemTime (wall clock) makes output time-dependent; derive timestamps from inputs or move to iixml-bench".into(),
                ));
            }
            if t.is_ident("Instant")
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
                && toks[i + 1].kind == TokKind::Punct(':')
                && toks[i + 2].kind == TokKind::Punct(':')
                && !crate_is("obs")
            {
                out.push(finding(
                    f,
                    "determinism",
                    t.line,
                    "Instant::now outside iixml-obs spans / iixml-bench; route timing through obs so it stays toggleable and off the data path".into(),
                ));
            }
            if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
                out.push(finding(
                    f,
                    "determinism",
                    t.line,
                    "unseeded randomness; use iixml_gen::rng::DetRng with an explicit seed".into(),
                ));
            }
        }
        if hash_scope
            && (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && (stmt_has_use
                || (i >= 2
                    && toks[i - 1].kind == TokKind::Punct(':')
                    && toks[i - 2].kind == TokKind::Punct(':')))
        {
            out.push(finding(
                f,
                "determinism",
                t.line,
                format!(
                    "{} iteration order is RandomState-seeded; use BTreeMap/BTreeSet or add a vet.allow entry arguing order never reaches output",
                    t.text
                ),
            ));
        }
    }
}

/// `format`: the frozen on-disk spellings (`IIXJWAL`, `REC!`,
/// `IIXSNAP`) may appear only in the registry module; tests are exempt
/// (they craft corrupt inputs on purpose).
pub fn frozen_format(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.path == FORMAT_REGISTRY || f.crate_name.as_deref() == Some("vet") {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if f.skip(i) || t.kind != TokKind::Str {
            continue;
        }
        let content = t.str_content();
        for (_, magic) in FROZEN_MAGICS {
            if content.contains(magic) {
                out.push(finding(
                    f,
                    "format",
                    t.line,
                    format!(
                        "stray on-disk magic {magic:?}; spell it via iixml_store::format (single registry, see {FORMAT_REGISTRY})"
                    ),
                ));
            }
        }
    }
}

/// The registry side of `format`: the module must exist and still
/// declare the frozen alphabet. `files` is the full workspace set.
pub fn frozen_format_registry(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(reg) = files.iter().find(|f| f.path == FORMAT_REGISTRY) else {
        out.push(Finding {
            rule: "format",
            file: FORMAT_REGISTRY.to_string(),
            line: 1,
            message: "format registry module is missing".into(),
        });
        return;
    };
    let const_token = |name: &str, want_kind: TokKind| -> Option<Token> {
        let toks = &reg.tokens;
        let i = toks.iter().position(|t| t.is_ident(name))?;
        let eq = toks[i..]
            .iter()
            .position(|t| t.kind == TokKind::Punct('='))?
            + i;
        toks[eq..]
            .iter()
            .take_while(|t| t.kind != TokKind::Punct(';'))
            .find(|t| t.kind == want_kind)
            .cloned()
    };
    for (name, magic) in FROZEN_MAGICS {
        match const_token(name, TokKind::Str) {
            Some(t) if t.str_content() == *magic => {}
            Some(t) => out.push(Finding {
                rule: "format",
                file: reg.path.clone(),
                line: t.line,
                message: format!("{name} must stay {magic:?} (frozen); found {}", t.text),
            }),
            None => out.push(Finding {
                rule: "format",
                file: reg.path.clone(),
                line: 1,
                message: format!("{name} = {magic:?} missing from the format registry"),
            }),
        }
    }
    for (name, value) in FROZEN_TAGS {
        match const_token(name, TokKind::Num) {
            Some(t) if t.text == *value => {}
            Some(t) => out.push(Finding {
                rule: "format",
                file: reg.path.clone(),
                line: t.line,
                message: format!(
                    "{name} must stay {value} (frozen record tag); found {}",
                    t.text
                ),
            }),
            None => out.push(Finding {
                rule: "format",
                file: reg.path.clone(),
                line: 1,
                message: format!("{name} = {value} missing from the format registry"),
            }),
        }
    }
}

/// `metrics`: every metric name at an emit site must come from
/// `iixml_obs::keys` — a string literal (even inside `format!`) as the
/// key argument silently mints a new metric on any typo.
pub fn metric_keys(f: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(f.kind, FileKind::CrateSrc | FileKind::RootSrc)
        || f.path == KEYS_REGISTRY
        || f.crate_name.as_deref() == Some("vet")
    {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if f.skip(i) {
            continue;
        }
        let t = &toks[i];
        // LazyCounter::new( / LazyHistogram::new(
        let ctor = (t.is_ident("LazyCounter") || t.is_ident("LazyHistogram"))
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct(':'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("new"))
            && toks
                .get(i + 4)
                .is_some_and(|n| n.kind == TokKind::Punct('('));
        // iixml_obs::add / observe / time / counter / histogram (
        let dyn_call = (t.is_ident("iixml_obs") || t.is_ident("obs"))
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct(':'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Punct(':'))
            && toks.get(i + 3).is_some_and(|n| {
                n.kind == TokKind::Ident
                    && matches!(
                        n.text.as_str(),
                        "add" | "observe" | "time" | "counter" | "histogram"
                    )
            })
            && toks
                .get(i + 4)
                .is_some_and(|n| n.kind == TokKind::Punct('('));
        if !(ctor || dyn_call) {
            continue;
        }
        if let Some(close) = balanced(toks, i + 4, '(', ')') {
            if let Some(s) = toks[i + 5..close].iter().find(|t| t.kind == TokKind::Str) {
                out.push(finding(
                    f,
                    "metrics",
                    s.line,
                    format!(
                        "metric key literal {} bypasses the iixml_obs::keys registry (a typo would silently create a new metric)",
                        s.text
                    ),
                ));
            }
        }
    }
}

/// `env`: every `IIXML_*` environment variable name must come from the
/// `iixml_obs::keys` registry — including in tests, where a typo'd
/// variable silently reads nothing and the test pins the default.
pub fn env_vars(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.path == KEYS_REGISTRY || f.crate_name.as_deref() == Some("vet") {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Str || f.in_attr[i] {
            continue;
        }
        let content = t.str_content();
        let is_var_name = content.strip_prefix("IIXML_").is_some_and(|rest| {
            !rest.is_empty()
                && rest
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        });
        if is_var_name {
            out.push(finding(
                f,
                "env",
                t.line,
                format!("env var literal {content:?} bypasses the iixml_obs::keys registry (use keys::ENV_* so every knob stays documented)"),
            ));
        }
    }
}

/// The registry side of `env`: every declared variable must be
/// documented in README.md.
pub fn env_registry(readme: Option<&str>, out: &mut Vec<Finding>) {
    let Some(readme) = readme else {
        out.push(Finding {
            rule: "env",
            file: "README.md".into(),
            line: 1,
            message: "README.md missing; cannot verify env var documentation".into(),
        });
        return;
    };
    for &(name, _) in iixml_obs::keys::ENV_VARS {
        if !readme.contains(name) {
            out.push(Finding {
                rule: "env",
                file: "README.md".into(),
                line: 1,
                message: format!(
                    "{name} is in the iixml_obs::keys registry but undocumented in README.md"
                ),
            });
        }
    }
}
