#![warn(missing_docs)]

//! `iixml-vet` — workspace static analysis for the invariants the
//! compiler cannot check.
//!
//! The paper's correctness story rests on discipline: Refine must
//! never lose `rep(T)` equivalence to a stray panic (Lemmas 3.2–3.3),
//! recovery must read exactly the frozen WAL alphabet, and every
//! output must be byte-reproducible across runs and thread widths.
//! PRs used to enforce these by manual audit; this crate enforces them
//! mechanically, on every `cargo test` and in CI:
//!
//! * `panic` — no `unwrap`/`expect`/`panic!`-family/indexing in
//!   non-test code of the data-path crates;
//! * `net-timeout` — in `iixml-serve`, every socket read/write is
//!   preceded by the matching `set_read_timeout`/`set_write_timeout`
//!   in the same fn (a slow client must hit a deadline, not pin a
//!   thread);
//! * `determinism` — no wall clock, no `Instant::now` outside
//!   obs/bench, no `RandomState`-ordered containers in
//!   byte-reproducible crates, no unseeded randomness;
//! * `format` — the `IIXJWAL`/`REC!`/`IIXSNAP` spellings live only in
//!   `iixml_store::format`, and that registry still spells them the
//!   frozen way;
//! * `metrics` — metric keys come from `iixml_obs::keys`, never
//!   literals (a typo would silently mint a new metric);
//! * `env` — `IIXML_*` variables come from the same registry and are
//!   documented in README.md;
//! * `io-ack` — in `iixml-store`, durability-bearing Results
//!   (write/sync/rename/remove) are never discarded with `let _ =` or
//!   a bare `.ok()`/`.is_ok()` (a swallowed write error is a silent
//!   data loss waiting for the crash to reveal it).
//!
//! Justified survivors live in `vet.allow` with a mandatory written
//! reason; stale or reasonless entries are findings themselves. See
//! DESIGN.md §10 for the rule catalog and false-positive strategy.

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod source;

use allow::Allowlist;
use iixml_obs::json::Json;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`panic`, `panic-index`, `net-timeout`, `determinism`,
    /// `format`, `metrics`, `env`, `io-ack`, `allow`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// The CLI line format: `file:line rule message`.
    pub fn render(&self) -> String {
        format!("{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }

    /// The finding as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("file", self.file.clone())
            .set("line", u64::from(self.line))
            .set("rule", self.rule.to_string())
            .set("message", self.message.clone())
    }
}

/// The result of a full check.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings (allowlist applied), sorted by
    /// (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `vet.allow` (for `--json` visibility).
    pub suppressed: usize,
    /// Files checked.
    pub files: usize,
}

impl Report {
    /// The report as a JSON object (the CI artifact shape).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("files", self.files as u64)
            .set("suppressed", self.suppressed as u64)
            .set(
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            )
    }
}

/// Runs every rule over already-lexed sources. `readme` is README.md's
/// text for the env-registry documentation check.
pub fn check_sources(files: &[SourceFile], allowlist: &Allowlist, readme: Option<&str>) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for f in files {
        rules::panic_freedom(f, &mut raw);
        rules::net_timeout(f, &mut raw);
        rules::determinism(f, &mut raw);
        rules::frozen_format(f, &mut raw);
        rules::metric_keys(f, &mut raw);
        rules::env_vars(f, &mut raw);
        rules::io_ack(f, &mut raw);
    }
    rules::frozen_format_registry(files, &mut raw);
    rules::env_registry(readme, &mut raw);

    // Two index expressions on one line are one finding; distinct
    // messages at the same location stay distinct.
    raw.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    raw.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    for finding in raw {
        let line_text = files
            .iter()
            .find(|f| f.path == finding.file)
            .map(|f| f.line_text(finding.line))
            .unwrap_or("");
        if allowlist.suppresses(&finding, line_text) {
            suppressed += 1;
        } else {
            findings.push(finding);
        }
    }
    findings.extend(allowlist.parse_findings.iter().cloned());
    findings.extend(allowlist.stale_findings());
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Report {
        findings,
        suppressed,
        files: files.len(),
    }
}

/// Checks the workspace rooted at `root`: walks the source tree, loads
/// `vet.allow` and README.md, runs every rule. Errors are I/O-level
/// only (unreadable root); per-file read failures are findings, not
/// panics.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no Cargo.toml + crates/)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    let mut findings = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files, &mut findings);
        }
    }
    let allow_text = std::fs::read_to_string(root.join(allow::ALLOW_FILE)).unwrap_or_default();
    let allowlist = Allowlist::parse(&allow_text);
    let readme = std::fs::read_to_string(root.join("README.md")).ok();
    let mut report = check_sources(&files, &allowlist, readme.as_deref());
    report.findings.extend(findings);
    Ok(report)
}

/// Recursively collects lexable sources under `dir`, sorted so output
/// and the allow baseline are stable across filesystems.
fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>, findings: &mut Vec<Finding>) {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => return,
    };
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, files, findings);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&path) {
                Ok(content) => {
                    if let Some(f) = SourceFile::parse(&rel, &content) {
                        files.push(f);
                    }
                }
                Err(e) => findings.push(Finding {
                    rule: "io",
                    file: rel,
                    line: 1,
                    message: format!("unreadable: {e}"),
                }),
            }
        }
    }
}
