//! A lexed source file plus the classification the rules need: where
//! test code is, where attributes are, and what kind of file this is
//! within the workspace layout.

use crate::lexer::{lex, TokKind, Token};

/// How a file participates in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` — shipped library code.
    CrateSrc,
    /// Root `src/**` — the CLI binary and facade lib.
    RootSrc,
    /// Integration tests (`tests/**`, `crates/*/tests/**`).
    Tests,
    /// `examples/**` — demo code.
    Examples,
    /// `crates/bench/benches/**` — bench entry points.
    Benches,
}

/// One lexed workspace file.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The crate the file belongs to (`core` for
    /// `crates/core/src/x.rs`), or `None` for root `src/`, `tests/`,
    /// `examples/`.
    pub crate_name: Option<String>,
    /// Layout classification.
    pub kind: FileKind,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Per-token: is this inside `#[cfg(test)]` / `#[test]` code?
    pub in_test: Vec<bool>,
    /// Per-token: is this inside a `#[…]` / `#![…]` attribute?
    pub in_attr: Vec<bool>,
    /// Source lines, for allowlist needle matching and messages.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and classifies `content` as the workspace file at
    /// `rel_path`. Returns `None` for paths the checker does not cover
    /// (fixtures, target output, non-Rust files).
    pub fn parse(rel_path: &str, content: &str) -> Option<SourceFile> {
        let (crate_name, kind) = classify(rel_path)?;
        let tokens = lex(content);
        let (in_test, in_attr) = mark_regions(&tokens);
        Some(SourceFile {
            path: rel_path.to_string(),
            crate_name,
            kind,
            tokens,
            in_test,
            in_attr,
            lines: content.lines().map(str::to_string).collect(),
        })
    }

    /// The source line a finding points at (1-based), trimmed.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// Is the file, as a whole, test-only code?
    pub fn is_test_file(&self) -> bool {
        matches!(self.kind, FileKind::Tests)
    }

    /// Is token `i` in code the panic/determinism/metrics rules skip
    /// (test regions, attribute interiors)?
    pub fn skip(&self, i: usize) -> bool {
        self.is_test_file() || self.in_test[i] || self.in_attr[i]
    }
}

/// Maps a workspace-relative path to (crate, kind). `None` = not
/// checked.
fn classify(rel: &str) -> Option<(Option<String>, FileKind)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, "src", ..] => Some((Some(name.to_string()), FileKind::CrateSrc)),
        ["crates", name, "tests", ..] => Some((Some(name.to_string()), FileKind::Tests)),
        ["crates", name, "benches", ..] => Some((Some(name.to_string()), FileKind::Benches)),
        ["src", ..] => Some((None, FileKind::RootSrc)),
        ["tests", ..] => Some((None, FileKind::Tests)),
        ["examples", ..] => Some((None, FileKind::Examples)),
        _ => None,
    }
}

/// Computes per-token test-region and attribute flags.
///
/// A test region is the balanced-brace body (or single `;`-terminated
/// item) following an attribute that is `#[test]`-like or
/// `#[cfg(test)]`-like (any `cfg`/`cfg_attr` whose arguments mention
/// `test`). Attribute token spans themselves are flagged separately so
/// rules never match inside `#[…]`.
fn mark_regions(tokens: &[Token]) -> (Vec<bool>, Vec<bool>) {
    let n = tokens.len();
    let mut in_test = vec![false; n];
    let mut in_attr = vec![false; n];
    let mut i = 0;
    while i < n {
        if tokens[i].kind == TokKind::Punct('#') {
            // `#[…]` or `#![…]`.
            let mut j = i + 1;
            if j < n && tokens[j].kind == TokKind::Punct('!') {
                j += 1;
            }
            if j < n && tokens[j].kind == TokKind::Punct('[') {
                let close = match balanced(tokens, j, '[', ']') {
                    Some(c) => c,
                    None => break,
                };
                for flag in in_attr.iter_mut().take(close + 1).skip(i) {
                    *flag = true;
                }
                if attr_is_test(&tokens[j + 1..close]) {
                    // Mark the attached item: everything up to and
                    // including its brace body (or terminating `;`).
                    let mut k = close + 1;
                    // Further attributes on the same item are part of it.
                    while k < n {
                        match tokens[k].kind {
                            TokKind::Punct('#') => {
                                let mut a = k + 1;
                                if a < n && tokens[a].kind == TokKind::Punct('!') {
                                    a += 1;
                                }
                                match balanced(tokens, a, '[', ']') {
                                    Some(c) => {
                                        for flag in in_attr.iter_mut().take(c + 1).skip(k) {
                                            *flag = true;
                                        }
                                        k = c + 1;
                                    }
                                    None => break,
                                }
                            }
                            TokKind::Punct('{') => {
                                let end = balanced(tokens, k, '{', '}').unwrap_or(n - 1);
                                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                                    *flag = true;
                                }
                                k = end;
                                break;
                            }
                            TokKind::Punct(';') => {
                                for flag in in_test.iter_mut().take(k + 1).skip(i) {
                                    *flag = true;
                                }
                                break;
                            }
                            _ => k += 1,
                        }
                    }
                    i = k.max(close) + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    (in_test, in_attr)
}

/// Does this attribute body (tokens between `[` and `]`) gate on test
/// builds? Covers `test`, `cfg(test)`, `cfg(any(test, …))`,
/// `cfg_attr(test, …)`, `tokio::test`-style suffixes.
fn attr_is_test(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") || t.is_ident("cfg_attr") => {
            // `cfg(not(test))` gates *live* code; a bare `test` mention
            // gates test code. Negation inside a deeper combinator is
            // not handled — the workspace does not use it.
            body.iter().skip(1).any(|t| t.is_ident("test"))
                && !body.iter().any(|t| t.is_ident("not"))
        }
        // `#[foo::test]` (custom test macros).
        Some(_) => {
            body.len() >= 3
                && body[body.len() - 1].is_ident("test")
                && body[body.len() - 2].kind == TokKind::Punct(':')
        }
        None => false,
    }
}

/// Index of the matching closer for the opener at `open` (which must
/// hold `open_c`), honoring nesting. `None` if unbalanced.
pub fn balanced(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct(open_c) {
            depth += 1;
        } else if t.kind == TokKind::Punct(close_c) {
            // A closer with no opener in sight (caller pointed at the
            // wrong token): unbalanced, not a crash.
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(src: &str) -> (SourceFile,) {
        (SourceFile::parse("crates/core/src/x.rs", src).expect("classified"),)
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let (f,) = flags(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}",
        );
        let at = |name: &str| {
            let i = f.tokens.iter().position(|t| t.is_ident(name)).expect(name);
            f.in_test[i]
        };
        assert!(!at("live"));
        assert!(at("unwrap"));
        assert!(!at("live2"));
    }

    #[test]
    fn test_fn_with_stacked_attrs_is_marked() {
        let (f,) = flags("#[test]\n#[ignore]\nfn t() { boom(); }\nfn live() {}");
        let i = f
            .tokens
            .iter()
            .position(|t| t.is_ident("boom"))
            .expect("boom");
        assert!(f.in_test[i]);
        let j = f
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live");
        assert!(!f.in_test[j]);
    }

    #[test]
    fn attributes_are_not_code() {
        let (f,) = flags("#[doc = \"IIXML_NOT_A_READ\"]\nfn live() {}");
        let i = f
            .tokens
            .iter()
            .position(|t| t.kind == TokKind::Str)
            .expect("attr string");
        assert!(f.in_attr[i]);
        assert!(!f.in_test[i]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let (f,) = flags("#[cfg(unix)]\nfn live() { x.unwrap(); }");
        let i = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(!f.in_test[i]);
    }

    #[test]
    fn classification() {
        assert!(SourceFile::parse("crates/core/src/refine.rs", "").is_some());
        assert!(SourceFile::parse("tests/blowup.rs", "")
            .unwrap()
            .is_test_file());
        assert!(SourceFile::parse("crates/vet/fixtures/x.rs", "").is_none());
        assert!(SourceFile::parse("README.md", "").is_none());
        assert_eq!(
            SourceFile::parse("examples/quickstart.rs", "").map(|f| f.kind),
            Some(FileKind::Examples)
        );
    }
}
