//! The `vet.allow` baseline: justified survivors of the rules.
//!
//! One entry per line, four ` | `-separated fields:
//!
//! ```text
//! rule | path | needle | reason
//! ```
//!
//! An entry suppresses a finding when the rule matches, the path
//! matches exactly, and `needle` is a substring of the offending
//! source line. Needles anchor to code rather than line numbers, so
//! entries survive unrelated edits; the reason is mandatory — an
//! allowlist entry without an argument is itself a finding, and so is
//! an entry that no longer suppresses anything (a stale baseline reads
//! as "this is still justified" when nothing is there).
//!
//! A needle of `*` matches every line: a file-scoped waiver for one
//! rule. It exists for `panic-index`, where a module's bounds
//! discipline (interned ids, `0..len` loops) justifies indexing
//! wholesale and per-line entries would just transcribe the file.

use crate::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Workspace-relative path, exact match.
    pub path: String,
    /// Substring of the offending source line.
    pub needle: String,
    /// Why the violation is acceptable.
    pub reason: String,
    /// 1-based line in `vet.allow` (for diagnostics).
    pub line: u32,
}

/// The parsed allowlist plus per-entry use counts.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
    used: Vec<std::cell::Cell<bool>>,
    /// Findings produced while parsing (malformed lines, missing
    /// reasons).
    pub parse_findings: Vec<Finding>,
}

/// The allowlist file name at the workspace root.
pub const ALLOW_FILE: &str = "vet.allow";

impl Allowlist {
    /// Parses allowlist text. Never fails: malformed lines become
    /// findings against the allowlist file itself.
    pub fn parse(text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = (i + 1) as u32;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            let bad = |msg: &str| Finding {
                rule: "allow",
                file: ALLOW_FILE.to_string(),
                line: lineno,
                message: msg.to_string(),
            };
            if fields.len() != 4 {
                list.parse_findings
                    .push(bad("malformed entry: want `rule | path | needle | reason`"));
                continue;
            }
            let (rule, path, needle, reason) = (fields[0], fields[1], fields[2], fields[3]);
            if rule.is_empty() || path.is_empty() || needle.is_empty() {
                list.parse_findings
                    .push(bad("rule, path, and needle must be non-empty"));
                continue;
            }
            if reason.len() < 10 {
                list.parse_findings.push(bad(
                    "every allow entry needs a written justification (>= 10 chars)",
                ));
                continue;
            }
            list.entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                reason: reason.to_string(),
                line: lineno,
            });
            list.used.push(std::cell::Cell::new(false));
        }
        list
    }

    /// Does an entry suppress this finding (given the offending source
    /// line's text)? Marks the entry used.
    pub fn suppresses(&self, finding: &Finding, line_text: &str) -> bool {
        let mut hit = false;
        for (e, used) in self.entries.iter().zip(&self.used) {
            if e.rule == finding.rule
                && e.path == finding.file
                && (e.needle == "*" || line_text.contains(&e.needle))
            {
                used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Findings for entries that suppressed nothing.
    pub fn stale_findings(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !used.get())
            .map(|(e, _)| Finding {
                rule: "allow",
                file: ALLOW_FILE.to_string(),
                line: e.line,
                message: format!(
                    "stale entry ({} | {} | {}): it no longer suppresses any finding — delete it",
                    e.rule, e.path, e.needle
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_suppresses() {
        let list = Allowlist::parse(
            "# comment\n\npanic | crates/core/src/x.rs | foo.expect | Lemma 3.2 invariant: productive symbols always have a witness\n",
        );
        assert!(list.parse_findings.is_empty());
        assert_eq!(list.entries.len(), 1);
        let f = Finding {
            rule: "panic",
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: String::new(),
        };
        assert!(list.suppresses(&f, "let y = foo.expect(\"msg\");"));
        assert!(list.stale_findings().is_empty());
        let other = Finding {
            rule: "panic",
            file: "crates/core/src/y.rs".into(),
            line: 7,
            message: String::new(),
        };
        assert!(!list.suppresses(&other, "foo.expect(\"msg\")"));
    }

    #[test]
    fn malformed_and_reasonless_entries_are_findings() {
        let list = Allowlist::parse("panic | a.rs | needle\npanic | a.rs | needle | short\n");
        assert_eq!(list.parse_findings.len(), 2);
        assert!(list.entries.is_empty());
    }

    #[test]
    fn star_needle_is_a_file_scoped_waiver() {
        let list = Allowlist::parse(
            "panic-index | crates/core/src/ctt.rs | * | indices are interned symbol ids, always in range\n",
        );
        let f = |file: &str, rule: &'static str| Finding {
            rule,
            file: file.into(),
            line: 1,
            message: String::new(),
        };
        assert!(list.suppresses(
            &f("crates/core/src/ctt.rs", "panic-index"),
            "self.mu[s.ix()]"
        ));
        // Same file, different rule: not waived.
        assert!(!list.suppresses(&f("crates/core/src/ctt.rs", "panic"), "x.unwrap()"));
        // Different file: not waived.
        assert!(!list.suppresses(&f("crates/core/src/itree.rs", "panic-index"), "a[0]"));
    }

    #[test]
    fn stale_entries_are_reported() {
        let list = Allowlist::parse(
            "panic | a.rs | never_matches | this entry should be reported stale\n",
        );
        let stale = list.stale_findings();
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale"));
    }
}
