//! `iixml-vet` CLI: `cargo run -p iixml-vet -- check [--json] [--root DIR]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: iixml-vet check [--json] [--root DIR]

Runs the workspace static-analysis rules (panic, determinism, format,
metrics, env) and prints findings as `file:line rule message`, or as a
JSON report with --json. The baseline of justified survivors lives in
vet.allow at the workspace root. See DESIGN.md §10.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut saw_check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" => saw_check = true,
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !saw_check {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let report = match iixml_vet::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iixml-vet: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json().render_pretty());
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        eprintln!(
            "iixml-vet: {} file(s), {} finding(s), {} suppressed by vet.allow",
            report.files,
            report.findings.len(),
            report.suppressed
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
