//! Fixture-driven self-tests for the vet rules: each rule has a
//! positive fixture (everything in it must be flagged) and a negative
//! fixture (nothing may be), the lexer torture file pins the
//! false-positive strategy, and a CLI matrix checks the exit-code
//! contract on throwaway mini-workspaces.

use iixml_vet::allow::Allowlist;
use iixml_vet::source::SourceFile;
use iixml_vet::{check_sources, Finding};

/// A registry module with the frozen spellings, as mini-workspaces and
/// `check_sources` runs need one to satisfy the `format` registry rule.
const REGISTRY_SRC: &str = r#"
pub const SEGMENT_MAGIC: [u8; 7] = *b"IIXJWAL";
pub const FORMAT_VERSION: u8 = 1;
pub const FRAME_MAGIC: [u8; 4] = *b"REC!";
pub const SNAPSHOT_MAGIC: [u8; 7] = *b"IIXSNAP";
pub const SNAPSHOT_VERSION: u8 = 1;
pub const TAG_OPEN: u8 = 1;
pub const TAG_REFINE: u8 = 2;
pub const TAG_SOURCE_UPDATE: u8 = 3;
pub const TAG_QUARANTINE: u8 = 4;
pub const TAG_SNAPSHOT_REF: u8 = 5;
"#;

/// README text documenting every registered env var, so `env_registry`
/// stays quiet unless a test wants it loud.
fn readme() -> String {
    iixml_obs::keys::ENV_VARS
        .iter()
        .map(|(name, doc)| format!("- `{name}`: {doc}\n"))
        .collect()
}

/// Runs every rule over one fixture placed at `path`, alongside a
/// well-formed format registry.
fn run_on(path: &str, src: &str) -> Vec<Finding> {
    let fixture = SourceFile::parse(path, src).expect("fixture path classifies");
    let registry = SourceFile::parse("crates/store/src/format.rs", REGISTRY_SRC).expect("registry");
    let report = check_sources(&[fixture, registry], &Allowlist::parse(""), Some(&readme()));
    report.findings
}

fn rules_hit<'a>(findings: &'a [Finding], path: &str) -> Vec<&'a str> {
    findings
        .iter()
        .filter(|f| f.file == path)
        .map(|f| f.rule)
        .collect()
}

#[test]
fn panic_positive_fixture_is_fully_flagged() {
    let path = "crates/core/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/panic_pos.rs"));
    let rules = rules_hit(&findings, path);
    // unwrap, expect, panic!, todo!, unreachable!, unimplemented!.
    assert_eq!(
        rules.iter().filter(|r| **r == "panic").count(),
        6,
        "{findings:?}"
    );
    // v[i] and v[0], on separate lines.
    assert_eq!(
        rules.iter().filter(|r| **r == "panic-index").count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn panic_negative_fixture_is_clean() {
    let path = "crates/core/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/panic_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn panic_rule_is_scoped_to_data_path_crates() {
    // The same panicking source in a non-data-path crate (gen) or a
    // test file is out of scope for the panic rules.
    for path in ["crates/gen/src/fixture.rs", "crates/core/tests/fixture.rs"] {
        let findings = run_on(path, include_str!("../fixtures/panic_pos.rs"));
        assert!(
            !rules_hit(&findings, path)
                .iter()
                .any(|r| r.starts_with("panic")),
            "{path}: {findings:?}"
        );
    }
}

#[test]
fn panic_and_determinism_rules_cover_the_contain_crate() {
    // The containment analyzer feeds the byte-identity cache path, so
    // it joins the panic-free and hash-order crate sets: the positive
    // fixtures placed under crates/contain/src are fully flagged…
    let path = "crates/contain/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/panic_pos.rs"));
    let rules = rules_hit(&findings, path);
    assert_eq!(
        rules.iter().filter(|r| **r == "panic").count(),
        6,
        "{findings:?}"
    );
    let findings = run_on(path, include_str!("../fixtures/determinism_pos.rs"));
    let rules = rules_hit(&findings, path);
    assert!(
        rules.iter().filter(|r| **r == "determinism").count() >= 6,
        "{findings:?}"
    );
}

#[test]
fn contain_crate_test_code_stays_out_of_panic_scope() {
    // …while the same sources in contain's test tree stay out of scope
    // (tests unwrap freely), matching every other data-path crate.
    let path = "crates/contain/tests/fixture.rs";
    for src in [
        include_str!("../fixtures/panic_pos.rs"),
        include_str!("../fixtures/determinism_pos.rs"),
    ] {
        let findings = run_on(path, src);
        assert!(
            !rules_hit(&findings, path)
                .iter()
                .any(|r| r.starts_with("panic") || *r == "determinism"),
            "{findings:?}"
        );
    }
}

#[test]
fn net_timeout_positive_fixture_is_fully_flagged() {
    let path = "crates/serve/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/net_timeout_pos.rs"));
    let rules = rules_hit(&findings, path);
    // Three fully unarmed calls, a write with only the read deadline
    // armed, and a read in the fn after the one that armed.
    assert_eq!(
        rules.iter().filter(|r| **r == "net-timeout").count(),
        5,
        "{findings:?}"
    );
}

#[test]
fn net_timeout_negative_fixture_is_clean() {
    let path = "crates/serve/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/net_timeout_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn net_timeout_rule_is_scoped_to_the_serve_crate() {
    // The same unarmed reads in another crate's src or in a test file
    // are out of scope.
    for path in [
        "crates/webhouse/src/fixture.rs",
        "crates/serve/tests/fixture.rs",
    ] {
        let findings = run_on(path, include_str!("../fixtures/net_timeout_pos.rs"));
        assert!(
            !rules_hit(&findings, path).contains(&"net-timeout"),
            "{path}: {findings:?}"
        );
    }
}

#[test]
fn determinism_positive_fixture_is_fully_flagged() {
    let path = "crates/store/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/determinism_pos.rs"));
    let rules = rules_hit(&findings, path);
    // Use-imports of HashMap/HashSet, a ::-qualified HashMap,
    // SystemTime, Instant::now, and thread_rng all fire.
    assert!(
        rules.iter().filter(|r| **r == "determinism").count() >= 6,
        "{findings:?}"
    );
    assert!(rules.iter().all(|r| *r == "determinism"), "{findings:?}");
}

#[test]
fn determinism_negative_fixture_is_clean() {
    let path = "crates/store/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/determinism_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn format_positive_fixture_is_fully_flagged() {
    let path = "crates/store/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/format_pos.rs"));
    let rules = rules_hit(&findings, path);
    // b"IIXJWAL", "REC!", b"IIXSNAP", and the embedded REC! literal.
    assert_eq!(
        rules.iter().filter(|r| **r == "format").count(),
        4,
        "{findings:?}"
    );
}

#[test]
fn format_negative_fixture_is_clean() {
    let path = "crates/store/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/format_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn format_registry_tampering_is_flagged() {
    // A registry that re-spells a frozen magic is itself a finding —
    // the vet pass hardcodes the alphabet independently.
    let tampered = REGISTRY_SRC.replace("IIXJWAL", "IIXJWAX");
    let registry = SourceFile::parse("crates/store/src/format.rs", &tampered).expect("registry");
    let report = check_sources(&[registry], &Allowlist::parse(""), Some(&readme()));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "format" && f.message.contains("must stay")),
        "{:?}",
        report.findings
    );

    // And a workspace with no registry at all is flagged too.
    let lone = SourceFile::parse("crates/store/src/wal.rs", "fn x() {}").expect("file");
    let report = check_sources(&[lone], &Allowlist::parse(""), Some(&readme()));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "format" && f.message.contains("missing")),
        "{:?}",
        report.findings
    );
}

#[test]
fn metrics_positive_fixture_is_fully_flagged() {
    let path = "crates/core/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/metrics_pos.rs"));
    let rules = rules_hit(&findings, path);
    // Two Lazy ctors plus add/observe/time literal keys.
    assert_eq!(
        rules.iter().filter(|r| **r == "metrics").count(),
        5,
        "{findings:?}"
    );
}

#[test]
fn metrics_negative_fixture_is_clean() {
    let path = "crates/core/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/metrics_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn env_positive_fixture_is_fully_flagged() {
    let path = "crates/par/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/env_pos.rs"));
    let rules = rules_hit(&findings, path);
    // Two live reads plus the literal inside the test module.
    assert_eq!(
        rules.iter().filter(|r| **r == "env").count(),
        3,
        "{findings:?}"
    );
}

#[test]
fn env_negative_fixture_is_clean() {
    let path = "crates/par/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/env_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn env_registry_requires_readme_documentation() {
    let registry = SourceFile::parse("crates/store/src/format.rs", REGISTRY_SRC).expect("registry");
    let report = check_sources(
        &[registry],
        &Allowlist::parse(""),
        Some("a README that documents nothing"),
    );
    let undocumented: Vec<_> = report.findings.iter().filter(|f| f.rule == "env").collect();
    assert_eq!(
        undocumented.len(),
        iixml_obs::keys::ENV_VARS.len(),
        "{undocumented:?}"
    );
}

#[test]
fn io_ack_positive_fixture_is_fully_flagged() {
    let path = "crates/store/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/io_ack_pos.rs"));
    let rules = rules_hit(&findings, path);
    // Three `let _ =` discards plus three bare .ok()/.is_ok() collapses.
    assert_eq!(
        rules.iter().filter(|r| **r == "io-ack").count(),
        6,
        "{findings:?}"
    );
    assert!(rules.iter().all(|r| *r == "io-ack"), "{findings:?}");
}

#[test]
fn io_ack_negative_fixture_is_clean() {
    let path = "crates/store/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/io_ack_neg.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn io_ack_rule_is_scoped_to_store_non_test_code() {
    // The same discards in another crate's src or in a store test file
    // are out of scope (tests tear down scratch dirs best-effort).
    for path in ["crates/gen/src/fixture.rs", "crates/store/tests/fixture.rs"] {
        let findings = run_on(path, include_str!("../fixtures/io_ack_pos.rs"));
        assert!(
            !rules_hit(&findings, path).contains(&"io-ack"),
            "{path}: {findings:?}"
        );
    }
}

#[test]
fn lexer_torture_fixture_produces_no_findings() {
    let path = "crates/core/src/fixture.rs";
    let findings = run_on(path, include_str!("../fixtures/lexer_torture.rs"));
    assert!(rules_hit(&findings, path).is_empty(), "{findings:?}");
}

#[test]
fn allowlist_wildcard_suppresses_and_stale_entries_fire() {
    let path = "crates/core/src/fixture.rs";
    let fixture =
        SourceFile::parse(path, include_str!("../fixtures/panic_pos.rs")).expect("fixture");
    let registry = SourceFile::parse("crates/store/src/format.rs", REGISTRY_SRC).expect("registry");
    let allow = Allowlist::parse(concat!(
        "panic-index | crates/core/src/fixture.rs | * | fixture indexes fixed arrays, bounds trivially hold\n",
        "panic | crates/core/src/fixture.rs | never-in-the-file | stale on purpose for this test\n",
    ));
    let report = check_sources(&[fixture, registry], &allow, Some(&readme()));
    assert_eq!(report.suppressed, 2, "both index findings suppressed");
    assert!(!report.findings.iter().any(|f| f.rule == "panic-index"));
    // The unwrap/expect/panic! findings survive, plus the stale entry.
    assert!(report.findings.iter().filter(|f| f.rule == "panic").count() >= 6);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "allow" && f.message.contains("stale")),
        "{:?}",
        report.findings
    );
}
