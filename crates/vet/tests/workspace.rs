//! End-to-end checks: the vet binary's exit-code contract on throwaway
//! mini-workspaces, and the self-check that the live workspace is
//! clean under the committed `vet.allow` baseline.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const REGISTRY_SRC: &str = r#"
pub const SEGMENT_MAGIC: [u8; 7] = *b"IIXJWAL";
pub const FORMAT_VERSION: u8 = 1;
pub const FRAME_MAGIC: [u8; 4] = *b"REC!";
pub const SNAPSHOT_MAGIC: [u8; 7] = *b"IIXSNAP";
pub const SNAPSHOT_VERSION: u8 = 1;
pub const TAG_OPEN: u8 = 1;
pub const TAG_REFINE: u8 = 2;
pub const TAG_SOURCE_UPDATE: u8 = 3;
pub const TAG_QUARANTINE: u8 = 4;
pub const TAG_SNAPSHOT_REF: u8 = 5;
"#;

/// Builds a throwaway workspace containing the format registry, a
/// README documenting every env var, and `extra` files at their
/// workspace-relative paths. Caller removes it.
fn mini_workspace(tag: &str, extra: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("iixml-vet-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let readme: String = iixml_obs::keys::ENV_VARS
        .iter()
        .map(|(name, doc)| format!("- `{name}`: {doc}\n"))
        .collect();
    let mut files = vec![
        ("Cargo.toml".to_string(), "[workspace]\n".to_string()),
        ("README.md".to_string(), readme),
        (
            "crates/store/src/format.rs".to_string(),
            REGISTRY_SRC.to_string(),
        ),
    ];
    for (path, src) in extra {
        files.push((path.to_string(), src.to_string()));
    }
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }
    root
}

fn run_vet(root: &Path, json: bool) -> (Option<i32>, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_iixml-vet"));
    cmd.arg("check").arg("--root").arg(root);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("spawn iixml-vet");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_exits_nonzero_on_each_rules_positive_fixture() {
    let cases: &[(&str, &str, &str, &str)] = &[
        (
            "panic",
            "crates/core/src/lib.rs",
            include_str!("../fixtures/panic_pos.rs"),
            "panic",
        ),
        (
            "det",
            "crates/store/src/lib.rs",
            include_str!("../fixtures/determinism_pos.rs"),
            "determinism",
        ),
        (
            "format",
            "crates/store/src/lib.rs",
            include_str!("../fixtures/format_pos.rs"),
            "format",
        ),
        (
            "metrics",
            "crates/core/src/lib.rs",
            include_str!("../fixtures/metrics_pos.rs"),
            "metrics",
        ),
        (
            "env",
            "crates/par/src/lib.rs",
            include_str!("../fixtures/env_pos.rs"),
            "env",
        ),
        (
            "net",
            "crates/serve/src/lib.rs",
            include_str!("../fixtures/net_timeout_pos.rs"),
            "net-timeout",
        ),
    ];
    for (tag, path, src, rule) in cases {
        let root = mini_workspace(tag, &[(path, src)]);
        let (code, stdout, stderr) = run_vet(&root, false);
        assert_eq!(code, Some(1), "{tag}: stdout={stdout} stderr={stderr}");
        assert!(
            stdout.lines().any(|l| l.contains(&format!(" {rule} "))),
            "{tag}: findings must name rule {rule}; got\n{stdout}"
        );
        // The documented line shape: `file:line rule message`.
        let first = stdout.lines().next().expect("at least one finding");
        let (loc, _) = first.split_once(' ').expect("finding shape");
        let (file, line) = loc.rsplit_once(':').expect("file:line");
        assert_eq!(file, *path, "{tag}");
        line.parse::<u32>().expect("line number");
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn cli_exits_zero_on_a_clean_workspace_and_emits_json() {
    let clean = "fn tidy(v: &[u32]) -> Option<u32> { v.first().copied() }\n";
    let root = mini_workspace("clean", &[("crates/core/src/lib.rs", clean)]);
    let (code, stdout, stderr) = run_vet(&root, false);
    assert_eq!(code, Some(0), "stdout={stdout} stderr={stderr}");
    assert!(stdout.is_empty(), "clean runs print no findings: {stdout}");
    assert!(stderr.contains("0 finding(s)"), "{stderr}");

    let (code, stdout, _) = run_vet(&root, true);
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("\"findings\": []") && stdout.contains("\"files\""),
        "JSON report shape: {stdout}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cli_rejects_bad_usage() {
    let (code, _, stderr) = {
        let out = Command::new(env!("CARGO_BIN_EXE_iixml-vet"))
            .arg("frobnicate")
            .output()
            .expect("spawn iixml-vet");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn live_workspace_is_clean_under_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = iixml_vet::check_workspace(&root).expect("workspace root");
    assert!(
        report.findings.is_empty(),
        "vet must be clean on the live tree; run `cargo run -p iixml-vet -- check`:\n{}",
        report
            .findings
            .iter()
            .map(iixml_vet::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files > 50,
        "walker found the workspace ({} files)",
        report.files
    );
    assert!(
        report.suppressed > 0,
        "the committed vet.allow baseline should be active"
    );
}
