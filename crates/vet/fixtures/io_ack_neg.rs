//! io-ack negative fixture: every durability Result below is
//! acknowledged — propagated with `?`, matched, turned into an explicit
//! failure branch, or mapped into a value. Nothing may be flagged.
//! Fixtures are lexed, never compiled.

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// A struct whose `sync` *field* must not be mistaken for a call.
pub struct Policy {
    pub sync: bool,
}

pub fn acknowledged(mut f: File, dir: &Path) -> std::io::Result<()> {
    f.write_all(b"bytes")?;
    f.sync_data()?;
    match std::fs::rename(dir, dir) {
        Ok(()) => {}
        Err(e) => return Err(e),
    }
    // `.is_err()` reads as explicit failure handling, not discard.
    if f.sync_all().is_err() {
        return Err(std::io::Error::other("sync failed"));
    }
    // Acknowledged through a mapping: the error becomes a value.
    let landed = f.write_all(b"x").map(|()| 1u64).unwrap_or(0);
    let policy = Policy { sync: landed > 0 };
    if policy.sync {
        std::fs::remove_file(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_out_of_scope() {
        let mut f = File::create("scratch").unwrap();
        let _ = f.sync_data();
        let _ = std::fs::remove_file("scratch");
    }
}
