//! Positive fixture for the `panic` and `panic-index` rules: parsed as
//! a data-path crate file, every construct below must be flagged.

fn unwraps(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("this expect is Result::expect, not a parser method");
    a + b
}

fn macros(flag: bool) {
    if flag {
        panic!("flagged");
    }
    match flag {
        true => todo!(),
        false => unreachable!("also flagged"),
    }
}

fn unimplemented_too() {
    unimplemented!()
}

fn indexing(v: &[u32], i: usize) -> u32 {
    let a = v[i];
    let b = v[0];
    a + b
}
