//! Negative fixture for the `metrics` rule: parsed as an instrumented
//! crate file, nothing here may be flagged.

use iixml_obs::{keys, LazyCounter, LazyHistogram};

static STEPS: LazyCounter = LazyCounter::new(keys::CORE_REFINE_STEPS);
static SIZES: LazyHistogram = LazyHistogram::new(keys::CORE_REFINE_STEP_SIZE);

fn registry_keys(label: &str) {
    iixml_obs::add(keys::PAR_TASKS, 1);
    let _guard = iixml_obs::time(&keys::webhouse_fetch_ns(label));
    // A string literal away from an emit site is not a metric key.
    let message = "core.refine.steps looks like a key but is a log line";
    let _ = message;
}
