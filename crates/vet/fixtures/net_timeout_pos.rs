//! Positive fixture for the `net-timeout` rule: parsed as an
//! `iixml-serve` crate file, every unarmed socket call below must be
//! flagged.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn unarmed_read(s: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    s.read(buf)
}

fn unarmed_read_exact(s: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    s.read_exact(buf)
}

fn unarmed_write(s: &mut TcpStream, buf: &[u8]) -> std::io::Result<()> {
    s.write_all(buf)
}

fn armed_for_reads_only(s: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_millis(100)))?;
    s.read_exact(buf)?;
    // Read deadline armed, write deadline not: still a finding.
    s.write_all(buf)
}

fn arming_does_not_leak_across_fns(s: &mut TcpStream) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_millis(100)))?;
    s.set_write_timeout(Some(Duration::from_millis(100)))
}

fn next_fn_starts_unarmed(s: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    s.read(buf)
}
