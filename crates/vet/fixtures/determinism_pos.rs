//! Positive fixture for the `determinism` rule: parsed as a
//! byte-reproducible crate file, every construct below must be flagged.

use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};
use std::time::SystemTime;

fn wall_clock() -> SystemTime {
    SystemTime::now()
}

fn monotonic() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

fn random_order(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> usize {
    let qualified: std::collections::HashMap<u32, u32> = m.clone();
    let _ = (qualified, s, BTreeMap::<u32, u32>::new());
    m.len()
}

fn unseeded() {
    thread_rng();
}

fn thread_rng() {}
