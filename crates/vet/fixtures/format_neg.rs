//! Negative fixture for the `format` rule: parsed as a non-registry
//! store file, nothing here may be flagged.

// The frozen spellings IIXJWAL, REC!, and IIXSNAP may appear in
// comments — prose is not a stray literal.

/// Reads the header through the registry, never a local spelling.
fn uses_registry(buf: &[u8], magic: &[u8; 7]) -> bool {
    buf.starts_with(magic)
}

fn unrelated_literals() -> (&'static str, &'static [u8]) {
    ("RECORD", b"WALRUS")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spell_magics_to_craft_corruption() {
        let torn = b"IIXJWAL\x01REC!";
        assert_eq!(&torn[..7], b"IIXJWAL");
    }
}
