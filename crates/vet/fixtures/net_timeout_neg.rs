//! Negative fixture for the `net-timeout` rule: parsed as an
//! `iixml-serve` crate file, nothing below may be flagged.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn armed_read(s: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    s.set_read_timeout(Some(Duration::from_millis(100)))?;
    s.read(buf)
}

fn armed_both(s: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_millis(100)))?;
    s.set_write_timeout(Some(Duration::from_millis(100)))?;
    s.read_exact(buf)?;
    s.write_all(buf)
}

fn write_macro_is_not_a_socket_write(out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "not a syscall");
}

fn read_as_a_field_is_fine(counts: &Counts) -> u64 {
    // `.read` without a call is member access, not a syscall.
    counts.read
}

pub struct Counts {
    pub read: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_read_bare() {
        let mut s = TcpStream::connect("127.0.0.1:1").unwrap();
        let mut buf = [0u8; 4];
        use std::io::Read;
        let _ = s.read(&mut buf);
    }
}
