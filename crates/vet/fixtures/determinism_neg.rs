//! Negative fixture for the `determinism` rule: parsed as a
//! byte-reproducible crate file, nothing here may be flagged.

use std::collections::{BTreeMap, BTreeSet};

/// Docs may discuss HashMap iteration order and SystemTime freely.
fn ordered(m: &BTreeMap<u32, u32>, s: &BTreeSet<u32>) -> Option<u32> {
    // Deterministic containers and seeded randomness only.
    let seed = 0xA5EEDu64;
    let _ = seed;
    m.keys().next().copied().or_else(|| s.iter().next().copied())
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_hashmaps_and_clocks() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = std::time::Instant::now();
        let _ = (m, t);
    }
}
