//! Positive fixture for the `env` rule: each `IIXML_*` literal below
//! bypasses the registry and must be flagged — tests included, since a
//! typo'd variable in a test silently pins the default.

fn reads() -> Option<String> {
    std::env::var("IIXML_OBS").ok()
}

fn typo() -> Option<String> {
    // The classic failure the registry exists to catch.
    std::env::var("IIXML_PAR_THREADZ").ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_literals_in_tests_are_flagged_too() {
        std::env::set_var("IIXML_TEST_SEED", "7");
    }
}
