//! Positive fixture for the `metrics` rule: parsed as an instrumented
//! crate file, each literal-key emit site below must be flagged.

use iixml_obs::{LazyCounter, LazyHistogram};

static ROGUE_COUNTER: LazyCounter = LazyCounter::new("core.rogue.steps");
static ROGUE_HISTOGRAM: LazyHistogram = LazyHistogram::new("core.rogue.size");

fn dynamic_sites() {
    iixml_obs::add("core.rogue.dynamic", 1);
    iixml_obs::observe("core.rogue.observed", 2);
    let _guard = iixml_obs::time("core.rogue.span_ns");
}
