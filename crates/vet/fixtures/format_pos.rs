//! Positive fixture for the `format` rule: parsed as a non-registry
//! store file, each stray on-disk spelling below must be flagged.

const ROGUE_SEGMENT: &[u8] = b"IIXJWAL";
const ROGUE_FRAME: &str = "REC!";

fn rogue_snapshot_header() -> Vec<u8> {
    let mut v = b"IIXSNAP".to_vec();
    v.push(1);
    v
}

fn embedded(buf: &[u8]) -> bool {
    // Even inside a longer literal the magic is a stray spelling.
    buf.starts_with(b"prefix-REC!-suffix")
}
