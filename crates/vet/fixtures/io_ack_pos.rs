//! io-ack positive fixture: every durability-Result discard below must
//! be flagged when this file sits in `crates/store/src` non-test code.
//! Fixtures are lexed, never compiled.

use std::fs::File;
use std::io::Write;
use std::path::Path;

pub fn swallowed(mut f: File, dir: &Path) -> std::io::Result<()> {
    let _ = f.write_all(b"bytes"); // flagged: let _ = on a write
    let _ = f.sync_data(); // flagged: let _ = on an fsync
    let _ = std::fs::rename(dir, dir); // flagged: let _ = on a rename
    f.sync_all().ok(); // flagged: bare .ok()
    if f.sync_data().is_ok() {} // flagged: bare .is_ok()
    std::fs::remove_file(dir).ok(); // flagged: bare .ok()
    Ok(())
}
