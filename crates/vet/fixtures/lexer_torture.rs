//! Lexer torture fixture: every line here LOOKS like a violation but
//! is data, not code. The self-test lexes this as a panic-scoped crate
//! file and asserts zero findings — pinning the false-positive
//! strategy of DESIGN.md §10.
//!
//! This file never compiles as part of the workspace (fixtures are
//! skipped by the walker); it only needs to lex.

// x.unwrap() in a line comment is not a call, and REC! here is prose.
/* x.expect("nested /* block */ comments hide panic!() and IIXJWAL") */

/// Doc comments mentioning .unwrap(), IIXSNAP, and SystemTime::now()
/// are prose. The strings below deliberately avoid the frozen magics:
/// unlike the panic rules, `format` inspects string *content*, so a
/// magic in a string here would be a true positive, not a false one.
fn strings() {
    let s = "contains .unwrap() and panic!(\"boom\") inside a string";
    let r = r#"raw string with "quotes" and .expect("data") inside"#;
    let many = r###"raw with ## hashes: r#"inner"# and more"###;
    let b = b"byte string FRAME with fake magic";
    let br = br##"raw byte string SEGMENT"##;
    let fmt = format!("IIXML_{}", "not_a_var_name_at_lex_time");
    let _ = (s, r, many, b, br, fmt);
}

fn chars_vs_lifetimes<'a>(x: &'a str) -> &'a str {
    let quote = '"'; // a char literal, not an unterminated string
    let escaped = '\''; // escaped quote char
    let unicode = '\u{1F980}';
    let bracket = '['; // not an index expression
    'outer: loop {
        break 'outer;
    }
    let _ = (quote, escaped, unicode, bracket);
    x
}

fn indexing_lookalikes() {
    // A slice pattern is not an index expression.
    let [a, b] = [1, 2];
    // An array literal after `=` is not an index expression.
    let arr = [a, b];
    // Attribute brackets are not index expressions either:
    #[allow(dead_code)]
    fn inner() {}
    let _ = arr;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u32> = vec![1];
        v[0]; // indexing in tests is fine
        Some(1).unwrap();
        std::collections::HashMap::<u32, u32>::new();
        panic!("tests may panic");
    }
}
