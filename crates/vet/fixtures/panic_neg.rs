//! Negative fixture for the `panic` rules: parsed as a data-path crate
//! file, nothing here may be flagged.

/// Mentions of .unwrap() and v[i] in docs are prose.
fn fallible(input: &str) -> Result<u32, String> {
    // A user-defined fallible `expect` followed by `?` is not
    // Result::expect (core::io's parser uses this shape).
    let parser = Parser { input };
    parser.expect("<")?;
    input.parse::<u32>().map_err(|e| e.to_string())
}

struct Parser<'a> {
    input: &'a str,
}

impl Parser<'_> {
    fn expect(&self, _tag: &str) -> Result<(), String> {
        Ok(())
    }
}

fn safe_access(v: &[u32], i: usize) -> u32 {
    // .get() instead of indexing; slice patterns and array literals
    // use brackets without indexing.
    let [first, second] = [1u32, 2u32];
    *v.get(i).unwrap_or(&0) + first + second
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_and_index() {
        let v = vec![1u32];
        assert_eq!(v[0], Some(1).unwrap());
        if v.is_empty() {
            unreachable!("empty");
        }
    }
}
