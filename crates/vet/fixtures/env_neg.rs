//! Negative fixture for the `env` rule: nothing here may be flagged.

use iixml_obs::keys;

fn reads() -> Option<String> {
    std::env::var(keys::ENV_OBS).ok()
}

fn near_misses() {
    // Prose and lookalikes: lowercase tails, embedded spaces, and
    // format! holes are not variable names.
    let doc = "set IIXML_OBS=1 to enable metrics";
    let lower = "IIXML_not_a_var";
    let fmt = format!("IIXML_{}", 7);
    let _ = (doc, lower, fmt);
}
